#include "svc/udp_transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace rg::svc {

#if defined(__linux__)

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string{"UdpSocketTransport: "} + what + ": " +
                           std::strerror(errno));
}

void fill_sockaddr(sockaddr_in& addr, const Endpoint& ep) noexcept {
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(ep.ip);
  addr.sin_port = htons(ep.port);
}

}  // namespace

UdpSocketTransport::UdpSocketTransport(const UdpSocketConfig& config)
    : bind_address_(config.bind_address),
      tx_batch_counter_(obs::Registry::global().counter("rg.gw.tx_batches")) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail("socket");

  if (config.reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd_);
      fail("setsockopt(SO_REUSEPORT)");
    }
  }
  if (config.recv_buffer_bytes > 0) {
    // Best-effort: the kernel clamps to rmem_max; a small buffer only
    // costs burst absorption, not correctness.
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &config.recv_buffer_bytes,
                       sizeof(config.recv_buffer_bytes));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("UdpSocketTransport: invalid bind address: " +
                             config.bind_address);
  }
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fail("bind");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd_);
    fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    ::close(fd_);
    fail("epoll_create1");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev) != 0) {
    ::close(epoll_fd_);
    ::close(fd_);
    fail("epoll_ctl(ADD)");
  }
}

UdpSocketTransport::~UdpSocketTransport() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (fd_ >= 0) ::close(fd_);
}

std::size_t UdpSocketTransport::poll_batch(std::span<RxDatagram> slots) {
  if (slots.empty()) return 0;
  epoll_event ev{};
  const int ready = ::epoll_wait(epoll_fd_, &ev, 1, /*timeout_ms=*/0);
  if (ready <= 0) return 0;

  std::size_t filled = 0;
  while (filled < slots.size() && !fallback_) {
    // One recvmmsg drains up to a whole syscall-batch of datagrams into
    // the caller's slots — the scatter array points straight at the slot
    // payload buffers, so there is no copy beyond the kernel's.
    const std::size_t want = std::min(slots.size() - filled, kMaxBatch);
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    sockaddr_in froms[kMaxBatch];
    std::memset(msgs, 0, want * sizeof(mmsghdr));
    for (std::size_t i = 0; i < want; ++i) {
      RxDatagram& slot = slots[filled + i];
      iovs[i].iov_base = slot.bytes.data();
      iovs[i].iov_len = slot.bytes.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &froms[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(froms[i]);
    }
    const std::size_t base = filled;
    const int n = ::recvmmsg(fd_, msgs, static_cast<unsigned>(want), MSG_DONTWAIT, nullptr);
    if (n < 0) {
      if (errno == ENOSYS) {
        fallback_ = true;
        break;  // demote to the single-call loop below
      }
      // EAGAIN / EINTR / transient socket errors: stop this pass, the
      // next pump retries.
      return filled;
    }
    for (int i = 0; i < n; ++i) {
      if ((msgs[i].msg_hdr.msg_flags & MSG_TRUNC) != 0) {
        ++oversize_;
        continue;  // leave the output slot open for the next datagram
      }
      RxDatagram& slot = slots[filled];
      // The kernel scattered message i into slots[base + i]; when an
      // earlier truncated datagram was skipped, compact left.
      if (base + static_cast<std::size_t>(i) != filled) {
        std::memcpy(slot.bytes.data(), slots[base + static_cast<std::size_t>(i)].bytes.data(),
                    msgs[i].msg_len);
      }
      slot.from = Endpoint{ntohl(froms[i].sin_addr.s_addr), ntohs(froms[i].sin_port)};
      slot.len = static_cast<std::uint16_t>(msgs[i].msg_len);
      ++filled;
    }
    if (static_cast<std::size_t>(n) < want) return filled;  // socket drained
  }

  // ENOSYS fallback: same semantics, one recvfrom per datagram.
  while (fallback_ && filled < slots.size()) {
    RxDatagram& slot = slots[filled];
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, slot.bytes.data(), slot.bytes.size(),
                                 MSG_DONTWAIT | MSG_TRUNC,
                                 reinterpret_cast<sockaddr*>(&from),  // rg-lint: allow(cast)
                                 &from_len);
    if (n < 0) break;  // EAGAIN/EINTR/transient: next pump retries
    if (static_cast<std::size_t>(n) > slot.bytes.size()) {
      ++oversize_;
      continue;
    }
    slot.from = Endpoint{ntohl(from.sin_addr.s_addr), ntohs(from.sin_port)};
    slot.len = static_cast<std::uint16_t>(n);
    ++filled;
  }
  return filled;
}

std::size_t UdpSocketTransport::send_batch(std::span<const TxDatagram> slots) {
  if (slots.empty()) return 0;
  obs::Registry::global().add(tx_batch_counter_);
  std::size_t sent = 0;
  while (sent < slots.size() && !fallback_) {
    const std::size_t want = std::min(slots.size() - sent, kMaxBatch);
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch];
    sockaddr_in tos[kMaxBatch];
    std::memset(msgs, 0, want * sizeof(mmsghdr));
    for (std::size_t i = 0; i < want; ++i) {
      const TxDatagram& slot = slots[sent + i];
      // rg-lint: allow(cast) -- sendmmsg scatter array: the kernel never writes through it
      iovs[i].iov_base = const_cast<std::uint8_t*>(slot.bytes.data());
      iovs[i].iov_len = slot.len;
      fill_sockaddr(tos[i], slot.to);
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &tos[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(tos[i]);
    }
    const int n = ::sendmmsg(fd_, msgs, static_cast<unsigned>(want), MSG_DONTWAIT);
    if (n < 0) {
      if (errno == ENOSYS) {
        fallback_ = true;
        break;
      }
      return sent;  // EAGAIN or transient error: report what got out
    }
    sent += static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < want) return sent;  // socket buffer full
  }
  while (fallback_ && sent < slots.size()) {
    const TxDatagram& slot = slots[sent];
    sockaddr_in to{};
    fill_sockaddr(to, slot.to);
    const ssize_t n = ::sendto(fd_, slot.bytes.data(), slot.len, MSG_DONTWAIT,
                               reinterpret_cast<const sockaddr*>(&to),  // rg-lint: allow(cast)
                               sizeof(to));
    if (n < 0) break;
    ++sent;
  }
  return sent;
}

std::string UdpSocketTransport::describe() const {
  return "udp:" + bind_address_ + ":" + std::to_string(bound_port_);
}

#else  // !__linux__

UdpSocketTransport::UdpSocketTransport(const UdpSocketConfig&) {
  throw std::runtime_error("UdpSocketTransport requires Linux (epoll)");
}
UdpSocketTransport::~UdpSocketTransport() = default;
std::size_t UdpSocketTransport::poll_batch(std::span<RxDatagram>) { return 0; }
std::size_t UdpSocketTransport::send_batch(std::span<const TxDatagram>) { return 0; }
std::string UdpSocketTransport::describe() const { return "udp:unsupported"; }

#endif

}  // namespace rg::svc
