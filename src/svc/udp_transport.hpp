// Real-socket transport: a non-blocking UDP socket drained via epoll
// with batched recvmmsg/sendmmsg syscalls.
//
// The gateway's on-ramp for live ITP traffic.  The socket is created
// non-blocking and registered with an epoll instance; poll_batch() asks
// epoll whether the socket is readable (zero timeout — the gateway loop
// owns pacing) and then drains one whole batch of datagrams per
// recvmmsg() call, so ingesting a 64-datagram burst costs two syscalls,
// not sixty-five.  Hosts whose kernel lacks recvmmsg/sendmmsg (ENOSYS)
// are detected on first use and served by a recvfrom/sendto loop — same
// semantics, one syscall per datagram.
//
// SO_REUSEPORT-ready: flipping `reuse_port` lets several gateway
// processes bind the same port and have the kernel shard flows across
// them by source-address hash — horizontal scaling without a fronting
// balancer.  Port 0 binds an ephemeral port; bound_port() reports it
// (tests and tier1 use this to avoid port collisions).
//
// Linux-only (epoll); the rest of the gateway is portable through the
// Transport interface, and everything above the socket is exercised via
// LoopbackTransport.
#pragma once

#include <cstdint>
#include <string>

#include "svc/transport.hpp"

namespace rg::svc {

struct UdpSocketConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;        ///< 0 = kernel-assigned ephemeral port
  bool reuse_port = false;       ///< SO_REUSEPORT (multi-process sharding)
  int recv_buffer_bytes = 1 << 20;  ///< SO_RCVBUF request (0 = kernel default)
};

class UdpSocketTransport final : public Transport {
 public:
  /// Binds and registers with epoll.  Throws std::runtime_error on any
  /// socket-layer failure (construction-time, per the error vocabulary).
  explicit UdpSocketTransport(const UdpSocketConfig& config = {});
  ~UdpSocketTransport() override;

  UdpSocketTransport(const UdpSocketTransport&) = delete;
  UdpSocketTransport& operator=(const UdpSocketTransport&) = delete;

  std::size_t poll_batch(std::span<RxDatagram> slots) override;
  std::size_t send_batch(std::span<const TxDatagram> slots) override;
  [[nodiscard]] std::string describe() const override;

  /// The actually-bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t bound_port() const noexcept { return bound_port_; }

  /// Datagrams larger than the ITP maximum that were discarded at the
  /// socket (MSG_TRUNC from the kernel; anything beyond kMaxDatagram is
  /// not a valid ITP frame anyway).
  [[nodiscard]] std::uint64_t oversize_datagrams() const noexcept { return oversize_; }

  /// True once an ENOSYS from recvmmsg/sendmmsg demoted this transport
  /// to the one-datagram-per-syscall fallback.
  [[nodiscard]] bool batched_syscalls() const noexcept { return !fallback_; }

  /// Largest datagram the transport will deliver; bigger ones count as
  /// oversize and are dropped before the gateway sees them.
  static constexpr std::size_t kMaxDatagram = kMaxTransportDatagram;

  /// Most datagrams one recvmmsg/sendmmsg carries; larger caller batches
  /// are served in kMaxBatch-sized syscall chunks.
  static constexpr std::size_t kMaxBatch = 128;

 private:
  int fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::string bind_address_;
  std::uint64_t oversize_ = 0;
  bool fallback_ = false;  ///< kernel lacks recvmmsg/sendmmsg
  std::uint32_t tx_batch_counter_ = 0;  ///< obs::MetricId
};

}  // namespace rg::svc
