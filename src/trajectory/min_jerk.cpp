#include "trajectory/min_jerk.hpp"

#include <algorithm>

namespace rg {

Position MinJerkSegment::position(double t) const noexcept {
  const double u = std::clamp(t / duration_, 0.0, 1.0);
  const double u3 = u * u * u;
  const double s = u3 * (10.0 - 15.0 * u + 6.0 * u * u);
  return start_ + s * (end_ - start_);
}

Vec3 MinJerkSegment::velocity(double t) const noexcept {
  if (t <= 0.0 || t >= duration_) return Vec3::zero();
  const double u = t / duration_;
  const double u2 = u * u;
  const double sdot = (30.0 * u2 - 60.0 * u2 * u + 30.0 * u2 * u2) / duration_;
  return sdot * (end_ - start_);
}

}  // namespace rg
