// Minimum-jerk point-to-point segment.
//
// Human reaching movements are well approximated by minimum-jerk profiles
// (Flash & Hogan 1985); we use them to synthesize surgeon-like tool
// motions for the master-console emulator.  The scalar profile is
//   s(u) = 10 u^3 - 15 u^4 + 6 u^5,  u = t / T in [0, 1],
// which has zero velocity and acceleration at both ends.
#pragma once

#include "common/error.hpp"
#include "kinematics/types.hpp"

namespace rg {

class MinJerkSegment {
 public:
  MinJerkSegment(Position start, Position end, double duration)
      : start_(start), end_(end), duration_(duration) {
    require(duration > 0.0, "MinJerkSegment duration must be > 0");
  }

  /// Position at time t (clamped to [0, duration]).
  [[nodiscard]] Position position(double t) const noexcept;

  /// Velocity at time t (zero outside [0, duration]).
  [[nodiscard]] Vec3 velocity(double t) const noexcept;

  [[nodiscard]] double duration() const noexcept { return duration_; }
  [[nodiscard]] const Position& start() const noexcept { return start_; }
  [[nodiscard]] const Position& end() const noexcept { return end_; }

 private:
  Position start_;
  Position end_;
  double duration_;
};

}  // namespace rg
