#include "trajectory/recorded.hpp"

#include <algorithm>
#include <sstream>
#include <string>

namespace rg {

RecordedTrajectory::RecordedTrajectory(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  require(!samples_.empty(), "RecordedTrajectory needs at least one sample");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    require(samples_[i].t > samples_[i - 1].t,
            "RecordedTrajectory samples must be strictly increasing in t");
  }
}

Result<RecordedTrajectory> RecordedTrajectory::from_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    return Error{ErrorCode::kMalformedPacket, "empty trajectory CSV"};
  }
  if (line.rfind("t,", 0) != 0) {
    return Error{ErrorCode::kMalformedPacket, "trajectory CSV must start with a 't,...' header"};
  }
  std::vector<Sample> samples;
  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    Sample s;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(ls >> s.t >> c1 >> s.pos[0] >> c2 >> s.pos[1] >> c3 >> s.pos[2]) || c1 != ',' ||
        c2 != ',' || c3 != ',') {
      return Error{ErrorCode::kMalformedPacket,
                   "bad trajectory CSV row at line " + std::to_string(line_no)};
    }
    if (!samples.empty() && s.t <= samples.back().t) {
      return Error{ErrorCode::kMalformedPacket,
                   "non-increasing time at line " + std::to_string(line_no)};
    }
    samples.push_back(s);
  }
  if (samples.empty()) {
    return Error{ErrorCode::kMalformedPacket, "trajectory CSV has no samples"};
  }
  return RecordedTrajectory(std::move(samples));
}

Position RecordedTrajectory::position(double t) const {
  if (t <= samples_.front().t) return samples_.front().pos;
  if (t >= samples_.back().t) return samples_.back().pos;
  // First sample with time > t.
  const auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](double value, const Sample& s) { return value < s.t; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  const double u = (t - lo.t) / (hi.t - lo.t);
  return lo.pos + u * (hi.pos - lo.pos);
}

void record_trajectory_csv(const Trajectory& trajectory, double dt, std::ostream& os) {
  require(dt > 0.0, "record_trajectory_csv: dt must be > 0");
  os << "t,x,y,z\n";
  os.precision(12);
  for (double t = 0.0; t <= trajectory.duration() + 1e-9; t += dt) {
    const Position p = trajectory.position(t);
    os << t << ',' << p[0] << ',' << p[1] << ',' << p[2] << '\n';
  }
}

}  // namespace rg
