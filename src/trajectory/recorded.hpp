// Recorded-trajectory playback.
//
// The paper's master-console emulator replays "previously collected
// trajectories of surgical movements made by a human operator".  This
// module provides the same workflow for the simulator: record any
// trajectory (or a live run's desired path) to CSV, and play a CSV back
// as a Trajectory with linear interpolation between samples.
//
// CSV format: header "t,x,y,z", one sample per line, strictly increasing
// t (seconds).
#pragma once

#include <istream>
#include <ostream>
#include <vector>

#include "common/error.hpp"
#include "trajectory/trajectory.hpp"

namespace rg {

class RecordedTrajectory final : public Trajectory {
 public:
  struct Sample {
    double t = 0.0;
    Position pos{};
  };

  /// Build from explicit samples (must be non-empty, strictly increasing).
  explicit RecordedTrajectory(std::vector<Sample> samples);

  /// Parse from CSV; fails with kMalformedPacket on format errors.
  static Result<RecordedTrajectory> from_csv(std::istream& is);

  [[nodiscard]] Position position(double t) const override;
  [[nodiscard]] double duration() const override { return samples_.back().t; }
  [[nodiscard]] const char* name() const override { return "recorded"; }

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_.size(); }

 private:
  std::vector<Sample> samples_;
};

/// Sample a trajectory at fixed dt and write the CSV.
void record_trajectory_csv(const Trajectory& trajectory, double dt, std::ostream& os);

}  // namespace rg
