#include "trajectory/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace rg {

// ---------------------------------------------------------------------------
// WaypointTrajectory
// ---------------------------------------------------------------------------
WaypointTrajectory::WaypointTrajectory(std::vector<Position> waypoints, double speed,
                                       double min_leg_time) {
  require(waypoints.size() >= 2, "WaypointTrajectory needs at least 2 waypoints");
  require(speed > 0.0, "WaypointTrajectory speed must be > 0");
  require(min_leg_time > 0.0, "WaypointTrajectory min_leg_time must be > 0");
  double t = 0.0;
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    const double dist = distance(waypoints[i], waypoints[i + 1]);
    const double leg_time = std::max(dist / speed, min_leg_time);
    segments_.emplace_back(waypoints[i], waypoints[i + 1], leg_time);
    starts_.push_back(t);
    t += leg_time;
  }
  total_ = t;
}

Position WaypointTrajectory::position(double t) const {
  if (t <= 0.0) return segments_.front().start();
  if (t >= total_) return segments_.back().end();
  // Binary search for the active segment.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  const auto idx = static_cast<std::size_t>(std::distance(starts_.begin(), it)) - 1;
  return segments_[idx].position(t - starts_[idx]);
}

// ---------------------------------------------------------------------------
// CircleTrajectory
// ---------------------------------------------------------------------------
CircleTrajectory::CircleTrajectory(Position center, double radius, double period_sec,
                                   double laps, double tilt_rad)
    : center_(center), radius_(radius), period_(period_sec),
      duration_(period_sec * laps), tilt_(tilt_rad) {
  require(radius > 0.0, "CircleTrajectory radius must be > 0");
  require(period_sec > 0.0, "CircleTrajectory period must be > 0");
  require(laps > 0.0, "CircleTrajectory laps must be > 0");
}

Position CircleTrajectory::position(double t) const {
  const double tc = std::clamp(t, 0.0, duration_);
  // Smooth spin-up/spin-down over the first/last quarter period avoids a
  // velocity step at the ends.
  const double ramp = std::min({1.0, 4.0 * tc / period_, 4.0 * (duration_ - tc) / period_});
  const double r = radius_ * std::clamp(ramp, 0.0, 1.0);
  const double phase = 2.0 * kPi * tc / period_;
  const double ct = std::cos(tilt_);
  const double st = std::sin(tilt_);
  return center_ + Vec3{r * std::cos(phase),
                        r * std::sin(phase) * ct,
                        r * std::sin(phase) * st};
}

// ---------------------------------------------------------------------------
// SutureTrajectory
// ---------------------------------------------------------------------------
namespace {
std::vector<Position> suture_waypoints(Position start, Vec3 advance_dir, int stitches,
                                       double stitch_len, double dip_depth) {
  require(stitches >= 1, "SutureTrajectory needs at least 1 stitch");
  require(stitch_len > 0.0 && dip_depth > 0.0, "SutureTrajectory lengths must be > 0");
  const double norm = advance_dir.norm();
  require(norm > 1e-12, "SutureTrajectory advance_dir must be nonzero");
  const Vec3 dir = (1.0 / norm) * advance_dir;
  const Vec3 down{0.0, 0.0, -dip_depth};

  std::vector<Position> wps;
  wps.push_back(start);
  Position p = start;
  for (int s = 0; s < stitches; ++s) {
    wps.push_back(p + down);                          // pierce
    wps.push_back(p + down + stitch_len * 0.5 * dir); // drag through tissue
    wps.push_back(p + stitch_len * 0.5 * dir);        // lift
    p = p + stitch_len * dir;                          // advance to next entry
    wps.push_back(p);
  }
  return wps;
}
}  // namespace

SutureTrajectory::SutureTrajectory(Position start, Vec3 advance_dir, int stitches,
                                   double stitch_len, double dip_depth, double stitch_time)
    : path_(suture_waypoints(start, advance_dir, stitches, stitch_len, dip_depth),
            /*speed=*/(4.0 * (stitch_len + dip_depth)) / std::max(stitch_time, 1e-3),
            /*min_leg_time=*/0.25) {}

Position SutureTrajectory::position(double t) const { return path_.position(t); }
double SutureTrajectory::duration() const { return path_.duration(); }

// ---------------------------------------------------------------------------
// Random trajectory + tremor
// ---------------------------------------------------------------------------
WaypointTrajectory make_random_trajectory(Pcg32& rng, const WorkspaceBox& box, int waypoints,
                                          double speed) {
  require(waypoints >= 2, "make_random_trajectory needs >= 2 waypoints");
  std::vector<Position> wps;
  wps.reserve(static_cast<std::size_t>(waypoints));
  for (int i = 0; i < waypoints; ++i) wps.push_back(box.sample(rng));
  return WaypointTrajectory{std::move(wps), speed};
}

TremorDecorator::TremorDecorator(std::shared_ptr<const Trajectory> base, std::uint64_t seed,
                                 double amplitude_m, double frequency_hz)
    : base_(std::move(base)), amplitude_(amplitude_m), frequency_(frequency_hz) {
  require(base_ != nullptr, "TremorDecorator base must not be null");
  Pcg32 rng(seed);
  for (std::size_t i = 0; i < 3; ++i) {
    phase_[i] = rng.uniform(0.0, 2.0 * kPi);
    phase2_[i] = rng.uniform(0.0, 2.0 * kPi);
  }
}

Position TremorDecorator::position(double t) const {
  Position p = base_->position(t);
  const double w = 2.0 * kPi * frequency_;
  for (std::size_t i = 0; i < 3; ++i) {
    // Two incommensurate sinusoids approximate band-limited tremor.
    p[i] += amplitude_ * (std::sin(w * t + phase_[i]) +
                          0.5 * std::sin(1.73 * w * t + phase2_[i]));
  }
  return p;
}

bool trajectory_reachable(const Trajectory& traj, const RavenKinematics& kin, double sample_dt) {
  require(sample_dt > 0.0, "trajectory_reachable sample_dt must be > 0");
  for (double t = 0.0; t <= traj.duration() + 1e-9; t += sample_dt) {
    if (!kin.inverse(traj.position(t)).ok()) return false;
  }
  return true;
}

}  // namespace rg
