// Surgical tool-motion trajectories for the master-console emulator.
//
// The paper's detection experiments replay "previously collected
// trajectories of surgical movements" through a console emulator and use
// trajectories "containing sufficient variability in the movement" for
// threshold learning.  We synthesize equivalents: waypoint reaches,
// circular scanning, and suture-like loops, all built from minimum-jerk
// segments inside a reachable workspace box.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "kinematics/types.hpp"
#include "trajectory/min_jerk.hpp"

namespace rg {

/// Axis-aligned Cartesian box, used to keep synthetic trajectories inside
/// the arm's dexterous workspace.
struct WorkspaceBox {
  Position lo{0.045, -0.055, -0.155};
  Position hi{0.135, 0.055, -0.075};

  [[nodiscard]] bool contains(const Position& p) const noexcept {
    for (std::size_t i = 0; i < 3; ++i) {
      if (p[i] < lo[i] || p[i] > hi[i]) return false;
    }
    return true;
  }
  [[nodiscard]] Position center() const noexcept { return 0.5 * (lo + hi); }
  [[nodiscard]] Position sample(Pcg32& rng) const noexcept {
    Position p;
    for (std::size_t i = 0; i < 3; ++i) p[i] = rng.uniform(lo[i], hi[i]);
    return p;
  }
};

/// A time-parameterized Cartesian tool path.
class Trajectory {
 public:
  virtual ~Trajectory() = default;

  /// Desired tool position at time t seconds (clamped beyond [0, duration]).
  [[nodiscard]] virtual Position position(double t) const = 0;

  /// Total duration (s).
  [[nodiscard]] virtual double duration() const = 0;

  /// Short label for logs / experiment records.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Piecewise minimum-jerk path through an ordered waypoint list.
class WaypointTrajectory final : public Trajectory {
 public:
  /// speed: average segment speed (m/s) used to time each leg; min_leg_time
  /// keeps very short hops from becoming violently fast.
  WaypointTrajectory(std::vector<Position> waypoints, double speed = 0.02,
                     double min_leg_time = 0.4);

  [[nodiscard]] Position position(double t) const override;
  [[nodiscard]] double duration() const override { return total_; }
  [[nodiscard]] const char* name() const override { return "waypoint"; }

 private:
  std::vector<MinJerkSegment> segments_;
  std::vector<double> starts_;  // start time of each segment
  double total_ = 0.0;
};

/// Circular scanning motion in a tilted plane (e.g. inspecting tissue).
class CircleTrajectory final : public Trajectory {
 public:
  CircleTrajectory(Position center, double radius, double period_sec, double laps,
                   double tilt_rad = 0.3);

  [[nodiscard]] Position position(double t) const override;
  [[nodiscard]] double duration() const override { return duration_; }
  [[nodiscard]] const char* name() const override { return "circle"; }

 private:
  Position center_;
  double radius_;
  double period_;
  double duration_;
  double tilt_;
};

/// Suture-like repeated loops: approach, pierce (dip), lift, advance.
class SutureTrajectory final : public Trajectory {
 public:
  SutureTrajectory(Position start, Vec3 advance_dir, int stitches, double stitch_len = 0.008,
                   double dip_depth = 0.006, double stitch_time = 2.2);

  [[nodiscard]] Position position(double t) const override;
  [[nodiscard]] double duration() const override;
  [[nodiscard]] const char* name() const override { return "suture"; }

 private:
  WaypointTrajectory path_;
};

/// Seeded random waypoint trajectory inside a workspace box — the
/// "sufficient variability" source for threshold learning.
[[nodiscard]] WaypointTrajectory make_random_trajectory(Pcg32& rng, const WorkspaceBox& box,
                                                        int waypoints, double speed = 0.02);

/// Decorator adding band-limited operator hand tremor to a base
/// trajectory (~9 Hz physiological tremor, tens of micrometres).
class TremorDecorator final : public Trajectory {
 public:
  TremorDecorator(std::shared_ptr<const Trajectory> base, std::uint64_t seed,
                  double amplitude_m = 3.0e-5, double frequency_hz = 9.0);

  [[nodiscard]] Position position(double t) const override;
  [[nodiscard]] double duration() const override { return base_->duration(); }
  [[nodiscard]] const char* name() const override { return "tremor"; }

 private:
  std::shared_ptr<const Trajectory> base_;
  double amplitude_;
  double frequency_;
  Vec3 phase_;
  Vec3 phase2_;
};

/// Sanity helper: true when every sampled point of the trajectory is
/// reachable by the arm's inverse kinematics.
[[nodiscard]] bool trajectory_reachable(const Trajectory& traj, const RavenKinematics& kin,
                                        double sample_dt = 0.05);

}  // namespace rg
