#include "viz/svg.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace rg {

namespace {

constexpr int kMarginLeft = 70;
constexpr int kMarginRight = 20;
constexpr int kMarginTop = 40;
constexpr int kMarginBottom = 50;

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string format_tick(double v) {
  std::ostringstream os;
  const double a = std::abs(v);
  if (v == 0.0) {
    os << "0";
  } else if (a >= 1000.0 || a < 0.01) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::fixed << std::setprecision(a < 1.0 ? 3 : 1) << v;
  }
  return os.str();
}

/// "Nice" tick spacing covering [lo, hi] with ~n intervals.
double nice_step(double lo, double hi, int n) {
  const double span = hi - lo;
  if (span <= 0.0) return 1.0;
  const double raw = span / n;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double norm = raw / mag;
  double step = 10.0;
  if (norm <= 1.5) step = 1.0;
  else if (norm <= 3.5) step = 2.0;
  else if (norm <= 7.5) step = 5.0;
  return step * mag;
}

}  // namespace

const char* series_color(std::size_t index) noexcept {
  static constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                                             "#9467bd", "#8c564b", "#17becf", "#7f7f7f"};
  return kPalette[index % (sizeof(kPalette) / sizeof(kPalette[0]))];
}

SvgChart::SvgChart(std::string title, std::string x_label, std::string y_label, int width,
                   int height)
    : title_(std::move(title)), x_label_(std::move(x_label)), y_label_(std::move(y_label)),
      width_(width), height_(height) {
  require(width > kMarginLeft + kMarginRight + 50, "SvgChart width too small");
  require(height > kMarginTop + kMarginBottom + 50, "SvgChart height too small");
}

void SvgChart::add_series(Series series) {
  require(series.x.size() == series.y.size(), "SvgChart series x/y length mismatch");
  require(!series.x.empty(), "SvgChart series must not be empty");
  if (series.color.empty()) series.color = series_color(series_.size());
  series_.push_back(std::move(series));
}

SvgChart::Extent SvgChart::data_extent() const {
  Extent e{std::numeric_limits<double>::max(), std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::max(), std::numeric_limits<double>::lowest()};
  for (const Series& s : series_) {
    for (double v : s.x) {
      e.x_lo = std::min(e.x_lo, v);
      e.x_hi = std::max(e.x_hi, v);
    }
    for (double v : s.y) {
      e.y_lo = std::min(e.y_lo, v);
      e.y_hi = std::max(e.y_hi, v);
    }
  }
  if (fixed_y_) {
    e.y_lo = y_lo_;
    e.y_hi = y_hi_;
  }
  if (e.x_hi <= e.x_lo) e.x_hi = e.x_lo + 1.0;
  if (e.y_hi <= e.y_lo) e.y_hi = e.y_lo + 1.0;
  // 4% headroom so lines do not hug the frame.
  const double pad = 0.04 * (e.y_hi - e.y_lo);
  if (!fixed_y_) {
    e.y_lo -= pad;
    e.y_hi += pad;
  }
  return e;
}

void SvgChart::render(std::ostream& os) const {
  require(!series_.empty(), "SvgChart::render: no series added");
  const Extent e = data_extent();
  const double plot_w = width_ - kMarginLeft - kMarginRight;
  const double plot_h = height_ - kMarginTop - kMarginBottom;
  const auto sx = [&](double x) {
    return kMarginLeft + plot_w * (x - e.x_lo) / (e.x_hi - e.x_lo);
  };
  const auto sy = [&](double y) {
    return kMarginTop + plot_h * (1.0 - (y - e.y_lo) / (e.y_hi - e.y_lo));
  };

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_ << "\" height=\""
     << height_ << "\" font-family=\"sans-serif\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  os << "<text x=\"" << width_ / 2 << "\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">"
     << escape_xml(title_) << "</text>\n";

  // Frame.
  os << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\"" << plot_w
     << "\" height=\"" << plot_h << "\" fill=\"none\" stroke=\"#333\"/>\n";

  // Ticks + grid.
  const double xstep = nice_step(e.x_lo, e.x_hi, 8);
  for (double t = std::ceil(e.x_lo / xstep) * xstep; t <= e.x_hi + 1e-12; t += xstep) {
    os << "<line x1=\"" << sx(t) << "\" y1=\"" << kMarginTop << "\" x2=\"" << sx(t)
       << "\" y2=\"" << kMarginTop + plot_h << "\" stroke=\"#ddd\"/>\n";
    os << "<text x=\"" << sx(t) << "\" y=\"" << kMarginTop + plot_h + 18
       << "\" text-anchor=\"middle\" font-size=\"11\">" << format_tick(t) << "</text>\n";
  }
  const double ystep = nice_step(e.y_lo, e.y_hi, 6);
  for (double t = std::ceil(e.y_lo / ystep) * ystep; t <= e.y_hi + 1e-12; t += ystep) {
    os << "<line x1=\"" << kMarginLeft << "\" y1=\"" << sy(t) << "\" x2=\""
       << kMarginLeft + plot_w << "\" y2=\"" << sy(t) << "\" stroke=\"#ddd\"/>\n";
    os << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << sy(t) + 4
       << "\" text-anchor=\"end\" font-size=\"11\">" << format_tick(t) << "</text>\n";
  }

  // Axis labels.
  os << "<text x=\"" << kMarginLeft + plot_w / 2 << "\" y=\"" << height_ - 12
     << "\" text-anchor=\"middle\" font-size=\"12\">" << escape_xml(x_label_) << "</text>\n";
  os << "<text x=\"16\" y=\"" << kMarginTop + plot_h / 2
     << "\" text-anchor=\"middle\" font-size=\"12\" transform=\"rotate(-90 16 "
     << kMarginTop + plot_h / 2 << ")\">" << escape_xml(y_label_) << "</text>\n";

  // Markers.
  for (const Marker& m : markers_) {
    if (m.x < e.x_lo || m.x > e.x_hi) continue;
    os << "<line x1=\"" << sx(m.x) << "\" y1=\"" << kMarginTop << "\" x2=\"" << sx(m.x)
       << "\" y2=\"" << kMarginTop + plot_h << "\" stroke=\"" << m.color
       << "\" stroke-dasharray=\"5,4\"/>\n";
    os << "<text x=\"" << sx(m.x) + 4 << "\" y=\"" << kMarginTop + 14
       << "\" font-size=\"11\" fill=\"" << m.color << "\">" << escape_xml(m.label)
       << "</text>\n";
  }

  // Series.
  for (const Series& s : series_) {
    os << "<polyline fill=\"none\" stroke=\"" << s.color << "\" stroke-width=\""
       << s.stroke_width << "\" points=\"";
    double prev_y = 0.0;
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (s.step && i > 0) {
        os << sx(s.x[i]) << ',' << sy(prev_y) << ' ';
      }
      os << sx(s.x[i]) << ',' << sy(s.y[i]) << ' ';
      prev_y = s.y[i];
    }
    os << "\"/>\n";
  }

  // Legend.
  double ly = kMarginTop + 10;
  for (const Series& s : series_) {
    const double lx = kMarginLeft + plot_w - 150;
    os << "<line x1=\"" << lx << "\" y1=\"" << ly << "\" x2=\"" << lx + 22 << "\" y2=\"" << ly
       << "\" stroke=\"" << s.color << "\" stroke-width=\"2.5\"/>\n";
    os << "<text x=\"" << lx + 28 << "\" y=\"" << ly + 4 << "\" font-size=\"11\">"
       << escape_xml(s.label) << "</text>\n";
    ly += 16;
  }

  os << "</svg>\n";
}

}  // namespace rg
