// Minimal SVG writer — the repository's stand-in for the paper's 3D
// graphic simulator.  The physics carries the evaluation; these plots
// make runs inspectable: trajectory traces, model-vs-plant overlays
// (Fig. 8), Byte-0 state timelines (Fig. 6), detection timelines.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rg {

/// An XY data series with a stroke colour.
struct Series {
  std::string label;
  std::string color = "#1f77b4";
  double stroke_width = 1.5;
  bool step = false;  ///< render as a step (staircase) line
  std::vector<double> x;
  std::vector<double> y;
};

/// Vertical marker line (e.g. attack onset, alarm time).
struct Marker {
  std::string label;
  std::string color = "#d62728";
  double x = 0.0;
};

/// A single-panel line chart with axes, tick labels, legend, markers.
class SvgChart {
 public:
  SvgChart(std::string title, std::string x_label, std::string y_label,
           int width = 860, int height = 360);

  /// Add a data series (x and y must be equal length; throws otherwise).
  void add_series(Series series);

  void add_marker(Marker marker) { markers_.push_back(std::move(marker)); }

  /// Fix the y-axis range instead of auto-scaling.
  void set_y_range(double lo, double hi) {
    y_lo_ = lo;
    y_hi_ = hi;
    fixed_y_ = true;
  }

  /// Render the complete SVG document.
  void render(std::ostream& os) const;

  [[nodiscard]] std::size_t series_count() const noexcept { return series_.size(); }

 private:
  struct Extent {
    double x_lo, x_hi, y_lo, y_hi;
  };
  [[nodiscard]] Extent data_extent() const;

  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int width_;
  int height_;
  std::vector<Series> series_;
  std::vector<Marker> markers_;
  double y_lo_ = 0.0;
  double y_hi_ = 0.0;
  bool fixed_y_ = false;
};

/// Default categorical palette (colour-blind-safe-ish).
[[nodiscard]] const char* series_color(std::size_t index) noexcept;

}  // namespace rg
