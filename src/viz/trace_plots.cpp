#include "viz/trace_plots.hpp"

namespace rg {

namespace {
std::vector<double> ticks_to_seconds(const TraceRecorder& trace) {
  std::vector<double> t;
  t.reserve(trace.size());
  for (const TraceSample& s : trace.samples()) t.push_back(static_cast<double>(s.tick) / 1000.0);
  return t;
}
}  // namespace

SvgChart joint_position_chart(const TraceRecorder& trace, const std::string& title) {
  require(trace.size() > 0, "joint_position_chart: empty trace");
  SvgChart chart(title, "time (s)", "joint position (rad | m)");
  const std::vector<double> t = ticks_to_seconds(trace);
  const char* names[3] = {"shoulder (rad)", "elbow (rad)", "insertion (m)"};
  for (std::size_t j = 0; j < 3; ++j) {
    Series s;
    s.label = names[j];
    s.color = series_color(j);
    s.x = t;
    s.y.reserve(trace.size());
    for (const TraceSample& sample : trace.samples()) s.y.push_back(sample.joint_pos[j]);
    chart.add_series(std::move(s));
  }
  return chart;
}

SvgChart end_effector_chart(const TraceRecorder& trace, const std::string& title) {
  require(trace.size() > 0, "end_effector_chart: empty trace");
  SvgChart chart(title, "time (s)", "position (m)");
  const std::vector<double> t = ticks_to_seconds(trace);
  const char* names[3] = {"x", "y", "z"};
  for (std::size_t axis = 0; axis < 3; ++axis) {
    Series s;
    s.label = names[axis];
    s.color = series_color(axis);
    s.x = t;
    s.y.reserve(trace.size());
    for (const TraceSample& sample : trace.samples()) s.y.push_back(sample.ee_truth[axis]);
    chart.add_series(std::move(s));
  }
  // Alarm markers.
  bool marked = false;
  for (const TraceSample& sample : trace.samples()) {
    if (sample.detector_alarm && !marked) {
      chart.add_marker(Marker{"alarm", "#d62728", static_cast<double>(sample.tick) / 1000.0});
      marked = true;  // first alarm only; more would clutter
    }
  }
  return chart;
}

SvgChart model_vs_plant_chart(std::span<const double> time_s, std::span<const double> model,
                              std::span<const double> plant, const std::string& title,
                              const std::string& y_label) {
  require(time_s.size() == model.size() && model.size() == plant.size(),
          "model_vs_plant_chart: length mismatch");
  SvgChart chart(title, "time (s)", y_label);
  Series ms;
  ms.label = "dynamic model";
  ms.color = series_color(0);
  ms.x.assign(time_s.begin(), time_s.end());
  ms.y.assign(model.begin(), model.end());
  Series ps;
  ps.label = "robot (plant)";
  ps.color = series_color(1);
  ps.x.assign(time_s.begin(), time_s.end());
  ps.y.assign(plant.begin(), plant.end());
  chart.add_series(std::move(ms));
  chart.add_series(std::move(ps));
  return chart;
}

SvgChart state_byte_chart(const std::vector<CapturedPacket>& capture,
                          std::size_t state_byte_index, std::uint8_t watchdog_mask,
                          const std::string& title) {
  require(!capture.empty(), "state_byte_chart: empty capture");
  SvgChart chart(title, "time (s)", "masked Byte value");
  Series s;
  s.label = "state byte";
  s.color = series_color(1);
  s.step = true;
  const std::uint8_t keep = static_cast<std::uint8_t>(~watchdog_mask);
  for (const CapturedPacket& pkt : capture) {
    if (state_byte_index >= pkt.bytes.size()) continue;
    s.x.push_back(static_cast<double>(pkt.tick) / 1000.0);
    s.y.push_back(static_cast<double>(pkt.bytes[state_byte_index] & keep));
  }
  chart.add_series(std::move(s));
  return chart;
}

}  // namespace rg
