// Ready-made charts for the common artifacts: run traces, model-vs-plant
// overlays (Fig. 8 style), and Byte-0 state timelines (Fig. 6 style).
#pragma once

#include <span>
#include <vector>

#include "attack/logging_wrapper.hpp"
#include "sim/trace.hpp"
#include "viz/svg.hpp"

namespace rg {

/// Joint positions (3 series) over time from a run trace.
[[nodiscard]] SvgChart joint_position_chart(const TraceRecorder& trace,
                                            const std::string& title = "Joint positions");

/// Ground-truth end-effector coordinates over time, with optional alarm
/// markers taken from the trace's detector flags.
[[nodiscard]] SvgChart end_effector_chart(const TraceRecorder& trace,
                                          const std::string& title = "End effector");

/// One model series against one plant series (Fig. 8 overlay).
[[nodiscard]] SvgChart model_vs_plant_chart(std::span<const double> time_s,
                                            std::span<const double> model,
                                            std::span<const double> plant,
                                            const std::string& title,
                                            const std::string& y_label);

/// The Fig-6 plot: the masked state-byte value over time from a capture.
[[nodiscard]] SvgChart state_byte_chart(const std::vector<CapturedPacket>& capture,
                                        std::size_t state_byte_index, std::uint8_t watchdog_mask,
                                        const std::string& title = "Byte 0 (watchdog stripped)");

}  // namespace rg
