// rg_lint fixture: cast gating.  One unannotated reinterpret_cast (a
// finding) and one carrying the allow annotation (waived).

namespace fixture {

const char* unannotated_cast(void* p) {
  return reinterpret_cast<const char*>(p);  // 1x cast
}

char* annotated_cast(void* p) {
  // rg-lint: allow(cast) -- fixture: annotated casts must not count
  return reinterpret_cast<char*>(p);
}

}  // namespace fixture
