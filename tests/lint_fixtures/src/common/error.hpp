// rg_lint fixture: ErrorCode exhaustiveness.  kDuplicate reuses wire
// value 1 (1x errorcode) and kUncovered has no to_string case
// (1x errorcode).
#pragma once

#include <cstdint>
#include <string_view>

namespace fixture {

enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kBad = 1,
  kDuplicate = 1,  // 1x errorcode: wire value collision
  kUncovered = 3,  // 1x errorcode: missing from to_string below
};

constexpr std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kBad: return "bad";
    case ErrorCode::kDuplicate: return "duplicate";
    default: return "unknown";
  }
}

}  // namespace fixture
