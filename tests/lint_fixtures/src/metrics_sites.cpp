// rg_lint fixture: metric-registry drift, one failure mode at a time.
//
//   rg.fixture.known        - registered + documented: clean
//   rg.fixture.unregistered - registered nowhere: finding
//   rg.fixture.undocumented - in the registry but absent from the docs: finding
//   rg.fixture.stale        - in the registry with no call site: finding
//     (seeded in src/obs/metric_names.hpp, not here)

#define RG_COUNT(name, delta) ((void)0)

namespace fixture {

void touch_metrics() {
  RG_COUNT("rg.fixture.known", 1);
  RG_COUNT("rg.fixture.unregistered", 1);  // 1x metric
  RG_COUNT("rg.fixture.undocumented", 1);  // 1x metric (via the registry entry)
}

}  // namespace fixture
