// rg_lint fixture: determinism discipline.
//
// Scanned (never compiled) by tests/test_lint.cpp.  Three nondeterminism
// classes are seeded inside RG_DETERMINISTIC bodies — randomness, a clock
// read, unordered-container iteration; a waived clock read and a clean
// deterministic body must not count.  Keep the counts in sync with
// kExpectedFixtureFindings in test_lint.cpp when editing.

#define RG_DETERMINISTIC

namespace fixture {

RG_DETERMINISTIC int nd_randomness() {
  return rand();  // 1x nondet
}

RG_DETERMINISTIC long nd_clock_read(struct timespec* ts) {
  return clock_gettime(0, ts);  // 1x nondet
}

RG_DETERMINISTIC int nd_unordered_iteration() {
  std::unordered_map<int, int> m;  // 1x nondet
  int sum = 0;
  for (const auto& kv : m) sum += kv.second;
  return sum;
}

RG_DETERMINISTIC long nd_waived() {
  // rg-lint: allow(nondet) -- fixture: waived clock read must not count
  return time(nullptr);
}

// Plain arithmetic: no findings.
RG_DETERMINISTIC int nd_clean(int a, int b) { return a * 31 + b; }

// Nondeterminism outside an RG_DETERMINISTIC body is out of scope.
int unmarked_clock() { return static_cast<int>(time(nullptr)); }

}  // namespace fixture
