// rg_lint fixture registry.  "rg.fixture.stale" has no call site in the
// fixture tree (1x metric finding); "rg.fixture.undocumented" has a call
// site but no mention in the fixture docs (1x metric finding).
#pragma once

namespace fixture {

inline constexpr const char* kMetricNames[] = {
    "rg.fixture.known",
    "rg.fixture.stale",
    "rg.fixture.undocumented",
};

}  // namespace fixture
