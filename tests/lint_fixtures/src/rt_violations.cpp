// rg_lint fixture: seeded real-time-discipline violations.
//
// Scanned (never compiled) by tests/test_lint.cpp.  Each violation below
// is seeded exactly once; the test asserts the analyzer reports exactly
// that set and nothing else.  Keep the counts in sync with
// kExpectedFixtureFindings in test_lint.cpp when editing.

#include <mutex>
#include <vector>

#define RG_REALTIME __attribute__((hot))

namespace fixture {

// An in-tree function with no annotation: calling it from an RG_REALTIME
// body must trigger the propagation check.
int helper_unannotated() { return 1; }

// An annotated declaration + definition pair: calling this is fine.
RG_REALTIME int helper_annotated();
RG_REALTIME int helper_annotated() { return 2; }

class Hot {
 public:
  RG_REALTIME double tick() {
    violations_ = new double[4];       // 1x alloc
    mu_.lock();                        // 1x lock
    std::printf("tick\n");             // 1x io
    if (violations_ == nullptr) throw 42;  // 1x throw
    usleep(5);                         // 1x block
    samples_.push_back(1.0);           // 1x push_back
    return static_cast<double>(helper_unannotated());  // 1x call
  }

  RG_REALTIME void flush_state(int fd, void* buf, unsigned long len) {
    write(fd, buf, len);               // 1x io (durability syscall)
    fsync(fd);                         // 1x io (durability syscall)
    msync(buf, len, 0);                // 1x io (durability syscall)
  }

  RG_REALTIME double tolerated() {
    // rg-lint: allow(alloc) -- fixture: waived violations must not count
    double* scratch = new double[2];
    const double out = scratch[0] + static_cast<double>(helper_annotated());
    delete[] scratch;  // rg-lint: allow(alloc) -- fixture: waiver on same line
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<double> samples_;
  double* violations_ = nullptr;
};

}  // namespace fixture
