// rg_lint fixture: waiver hygiene.
//
// Scanned (never compiled) by tests/test_lint.cpp.  Two allow annotations
// that no longer suppress anything are seeded (one above-line, one
// same-line); a live waiver that still excuses a real finding must not be
// flagged.  Keep the counts in sync with kExpectedFixtureFindings in
// test_lint.cpp when editing.

#define RG_REALTIME __attribute__((hot))

namespace fixture {

int stale_above_line() {
  // rg-lint: allow(io) -- fixture: the print this excused is long gone  (1x stale_waiver)
  return 5;
}

int stale_same_line() {
  return 6;  // rg-lint: allow(alloc) -- fixture: the new[] this excused is gone  (1x stale_waiver)
}

struct FixtureMutexish {
  void lock();
};

RG_REALTIME void live_waiver(FixtureMutexish& m) {
  // rg-lint: allow(lock) -- fixture: live waiver still suppresses a finding
  m.lock();
}

}  // namespace fixture
