// rg_lint fixture: thread-role discipline.
//
// Scanned (never compiled) by tests/test_lint.cpp.  Two cross-role calls
// are seeded; calls to `any`-role and role-neutral functions, plus a
// waived cross-role call, must not count.  Keep the counts in sync with
// kExpectedFixtureFindings in test_lint.cpp when editing.

#define RG_THREAD(role)

namespace fixture {

RG_THREAD(shard) int shard_only() { return 1; }
RG_THREAD(pump) int pump_only() { return 2; }
RG_THREAD(any) int any_role() { return 3; }
int role_neutral() { return 4; }

RG_THREAD(pump) int pump_calls_shard() {
  return shard_only();  // 1x thread_role
}

RG_THREAD(admin) int admin_calls_pump() {
  return pump_only();  // 1x thread_role
}

// Same-role, any-role, and role-neutral callees are all fine.
RG_THREAD(pump) int pump_clean() { return pump_only() + any_role() + role_neutral(); }

RG_THREAD(flusher) int flusher_waived() {
  // rg-lint: allow(thread_role) -- fixture: waived cross-role call must not count
  return shard_only();
}

}  // namespace fixture
