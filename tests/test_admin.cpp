// AdminServer tests: endpoint lifecycle over a real TCP socket (via the
// same http_get the tools use), readiness gating, the null-gateway
// metrics-only mode, and a concurrent-poll hammer.
//
// Suite name matters: scripts/tier1.sh runs `Admin.*` under
// ThreadSanitizer, so the poll hammer doubles as the data-race
// regression net for the whole read-only telemetry plane.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "net/itp_packet.hpp"
#include "obs/exposition.hpp"
#include "svc/admin.hpp"
#include "svc/gateway.hpp"
#include "svc/transport.hpp"

namespace rg::svc {
namespace {

Endpoint ep(std::uint16_t port) { return Endpoint{0x0a000001u, port}; }

ItpBytes packet_with_sequence(std::uint32_t seq) {
  ItpPacket pkt;
  pkt.sequence = seq;
  pkt.pedal_down = true;
  return encode_itp(pkt);
}

void inject(LoopbackTransport& transport, const Endpoint& from, const ItpBytes& bytes) {
  transport.inject(from, std::span<const std::uint8_t>{bytes});
}

void pump_all(TeleopGateway& gateway, LoopbackTransport& transport, std::uint64_t now_ms) {
  while (transport.pending() > 0) (void)gateway.pump(now_ms);
  gateway.drain();
}

bool contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Admin, EndpointLifecycle) {
  obs::Registry::global().reset();  // exact counter assertions below
  LoopbackTransport transport;
  GatewayConfig cfg;
  cfg.shards = 1;
  cfg.threaded = false;
  cfg.idle_timeout_ms = 1u << 30;
  TeleopGateway gateway(cfg, transport);
  for (std::uint32_t s = 1; s <= 3; ++s) inject(transport, ep(100), packet_with_sequence(s));
  pump_all(gateway, transport, 1);
  gateway.publish_snapshot(1);

  AdminConfig admin_cfg;
  admin_cfg.port = 0;
  AdminServer admin(admin_cfg, &gateway);
  const std::uint16_t port = admin.bound_port();
  ASSERT_NE(port, 0);

  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/healthz");
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r.value().status, 200);
    EXPECT_EQ(r.value().body, "ok\n");
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/readyz");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
    EXPECT_EQ(r.value().body, "ready\n");
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/metrics");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
    // Canonical dotted names stay greppable through the HELP lines.
    EXPECT_TRUE(contains(r.value().body, "# HELP rg_gw_rx_packets rg.gw.rx_packets"));
    EXPECT_TRUE(contains(r.value().body, "rg_gw_rx_packets "));
    EXPECT_TRUE(contains(r.value().body, "rg_gw_pump_jitter_ns_count"));
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/metrics.json");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
    const Result<obs::LiveSnapshot> live = obs::parse_live_json(r.value().body);
    ASSERT_TRUE(live.ok()) << live.error().to_string();
    const auto* rx = live.value().metrics.counter("rg.gw.rx_packets");
    ASSERT_NE(rx, nullptr);
    EXPECT_EQ(rx->value, 3u);
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/stats");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
    const Result<json::Value> doc = json::parse(r.value().body);
    ASSERT_TRUE(doc.ok()) << doc.error().to_string();
    EXPECT_EQ(doc.value().find("schema")->as_string(), "rg.admin.stats/1");
    EXPECT_TRUE(doc.value().find("captured")->as_bool());
    const json::Value* sessions = doc.value().find("sessions");
    ASSERT_NE(sessions, nullptr);
    ASSERT_EQ(sessions->as_array().size(), 1u);
    const json::Value& session = sessions->as_array()[0];
    EXPECT_TRUE(session.find("active")->as_bool());
    EXPECT_EQ(session.find("ingest")->find("accepted")->as_u64(), 3u);
    const json::Value* shards = doc.value().find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->as_array().size(), 1u);
    const json::Value& shard = shards->as_array()[0];
    EXPECT_EQ(shard.find("index")->as_u64(), 0u);
    EXPECT_EQ(shard.find("ticks")->as_u64(), 3u);
    EXPECT_EQ(shard.find("ring_full")->as_u64(), 0u);
    EXPECT_GT(shard.find("queue_hwm")->as_u64(), 0u);
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/flight");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
    EXPECT_TRUE(contains(r.value().body, "\"armed\": false"));
  }
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/no-such-endpoint");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 404);
  }

  admin.stop();
  admin.stop();  // idempotent
  EXPECT_FALSE(http_get("127.0.0.1", port, "/healthz", 200).ok());
  gateway.shutdown();
}

TEST(Admin, ReadyzGatesOnSnapshotAndThresholds) {
  LoopbackTransport transport;
  GatewayConfig cfg;
  cfg.shards = 1;
  cfg.threaded = false;
  TeleopGateway gateway(cfg, transport);

  AdminConfig admin_cfg;
  admin_cfg.port = 0;
  AdminServer admin(admin_cfg, &gateway);
  const std::uint16_t port = admin.bound_port();

  // No snapshot published yet: not ready.
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/readyz");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 503);
    EXPECT_TRUE(contains(r.value().body, "no gateway snapshot"));
  }

  gateway.publish_snapshot(1);
  admin.set_thresholds_loaded(false);
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/readyz");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 503);
    EXPECT_TRUE(contains(r.value().body, "thresholds"));
  }

  admin.set_thresholds_loaded(true);
  {
    const Result<HttpResponse> r = http_get("127.0.0.1", port, "/readyz");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().status, 200);
  }
  gateway.shutdown();
}

TEST(Admin, NullGatewayServesMetricsOnly) {
  AdminConfig admin_cfg;
  admin_cfg.port = 0;
  AdminServer admin(admin_cfg, nullptr);
  const std::uint16_t port = admin.bound_port();

  const Result<HttpResponse> metrics = http_get("127.0.0.1", port, "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics.value().status, 200);

  const Result<HttpResponse> stats = http_get("127.0.0.1", port, "/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().status, 200);
  const Result<json::Value> doc = json::parse(stats.value().body);
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(doc.value().find("captured")->as_bool());

  const Result<HttpResponse> ready = http_get("127.0.0.1", port, "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready.value().status, 200);  // vacuously ready
}

TEST(Admin, HttpGetFailsCleanlyWhenServerGone) {
  std::uint16_t port = 0;
  {
    AdminConfig admin_cfg;
    admin_cfg.port = 0;
    AdminServer admin(admin_cfg, nullptr);
    port = admin.bound_port();
  }
  const Result<HttpResponse> r = http_get("127.0.0.1", port, "/healthz", 200);
  EXPECT_FALSE(r.ok());
}

// The TSan net: pollers hammer every endpoint while the gateway ingests
// live traffic on threaded shards and publishes snapshots.  Any lock
// missing between the pump path and the admin read side shows up here.
TEST(Admin, ConcurrentPollsWhileGatewayPumps) {
  LoopbackTransport transport;
  GatewayConfig cfg;
  cfg.shards = 2;
  cfg.threaded = true;
  cfg.idle_timeout_ms = 1u << 30;
  cfg.stats_publish_period_ms = 1;
  TeleopGateway gateway(cfg, transport);
  gateway.publish_snapshot(0);

  AdminConfig admin_cfg;
  admin_cfg.port = 0;
  AdminServer admin(admin_cfg, &gateway);
  const std::uint16_t port = admin.bound_port();

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  const auto poller = [&stop, &failures, port](const char* path) {
    while (!stop.load(std::memory_order_relaxed)) {
      const Result<HttpResponse> r = http_get("127.0.0.1", port, path);
      if (!r.ok() || r.value().status != 200) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> pollers;
  pollers.emplace_back(poller, "/metrics");
  pollers.emplace_back(poller, "/stats");
  pollers.emplace_back(poller, "/metrics.json");

  constexpr int kSessions = 4;
  constexpr std::uint32_t kTicks = 200;
  for (std::uint32_t t = 1; t <= kTicks; ++t) {
    for (int s = 0; s < kSessions; ++s) {
      inject(transport, ep(static_cast<std::uint16_t>(5000 + s)), packet_with_sequence(t));
    }
    pump_all(gateway, transport, t);
  }
  gateway.drain();

  stop.store(true);
  for (std::thread& t : pollers) t.join();
  EXPECT_EQ(failures.load(), 0);

  const Result<HttpResponse> r = http_get("127.0.0.1", port, "/stats");
  ASSERT_TRUE(r.ok());
  const Result<json::Value> doc = json::parse(r.value().body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().find("sessions")->as_array().size(), static_cast<std::size_t>(kSessions));
  gateway.shutdown();
}

}  // namespace
}  // namespace rg::svc
