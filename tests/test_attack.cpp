// Unit tests for the attack module: interposition framework, logging
// malware, offline packet analysis (Fig 5/6), injection wrappers, math
// drift, attack engine.
#include <gtest/gtest.h>

#include "attack/attack_engine.hpp"
#include "attack/interposer.hpp"
#include "common/rng.hpp"
#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "hw/usb_packet.hpp"

namespace rg {
namespace {

// --- InterposerChain ------------------------------------------------------------

class AddOne final : public PacketInterposer {
 public:
  bool on_packet(std::span<std::uint8_t> bytes, std::uint64_t) override {
    if (!bytes.empty()) ++bytes[0];
    return true;
  }
};

class DropAll final : public PacketInterposer {
 public:
  bool on_packet(std::span<std::uint8_t>, std::uint64_t) override { return false; }
};

TEST(InterposerChain, EmptyChainPassesThrough) {
  InterposerChain chain;
  std::array<std::uint8_t, 2> buf{1, 2};
  EXPECT_TRUE(chain.process(buf, 0));
  EXPECT_EQ(buf[0], 1);
}

TEST(InterposerChain, AppliesInOrder) {
  InterposerChain chain;
  chain.add(std::make_shared<AddOne>());
  chain.add(std::make_shared<AddOne>());
  std::array<std::uint8_t, 1> buf{10};
  EXPECT_TRUE(chain.process(buf, 0));
  EXPECT_EQ(buf[0], 12);
}

TEST(InterposerChain, DropShortCircuits) {
  InterposerChain chain;
  chain.add(std::make_shared<DropAll>());
  chain.add(std::make_shared<AddOne>());  // never reached
  std::array<std::uint8_t, 1> buf{10};
  EXPECT_FALSE(chain.process(buf, 0));
  EXPECT_EQ(buf[0], 10);
}

TEST(InterposerChain, NullInterposerIgnored) {
  InterposerChain chain;
  chain.add(nullptr);
  EXPECT_TRUE(chain.empty());
}

// --- LoggingWrapper ---------------------------------------------------------------

TEST(LoggingWrapper, CapturesMatchingTraffic) {
  LoggingWrapper logger("raven", 7, "raven", 7);
  std::array<std::uint8_t, 3> buf{1, 2, 3};
  EXPECT_TRUE(logger.on_packet(buf, 42));
  ASSERT_EQ(logger.packets_captured(), 1u);
  EXPECT_EQ(logger.capture()[0].tick, 42u);
  EXPECT_EQ(logger.capture()[0].bytes, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(LoggingWrapper, FiltersByProcessAndFd) {
  LoggingWrapper wrong_proc("raven", 7, "bash", 7);
  LoggingWrapper wrong_fd("raven", 7, "raven", 8);
  std::array<std::uint8_t, 1> buf{1};
  EXPECT_TRUE(wrong_proc.on_packet(buf, 0));
  EXPECT_TRUE(wrong_fd.on_packet(buf, 0));
  EXPECT_EQ(wrong_proc.packets_captured(), 0u);
  EXPECT_EQ(wrong_fd.packets_captured(), 0u);
}

TEST(LoggingWrapper, NeverModifiesTraffic) {
  LoggingWrapper logger("raven", 7, "raven", 7);
  std::array<std::uint8_t, 3> buf{9, 8, 7};
  const auto before = buf;
  (void)logger.on_packet(buf, 0);
  EXPECT_EQ(buf, before);
}

// --- PacketAnalyzer: the Fig 5/6 offline analysis ------------------------------------

/// Build a synthetic capture replaying a full teleoperation run through
/// the real wire format (E-STOP -> Init -> PedalUp <-> PedalDown).
std::vector<CapturedPacket> synthetic_run(std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<CapturedPacket> capture;
  bool watchdog = false;
  std::uint64_t tick = 0;
  const auto emit = [&](RobotState state, int count, bool moving) {
    for (int i = 0; i < count; ++i) {
      CommandPacket pkt;
      pkt.state = state;
      watchdog = !watchdog;
      pkt.watchdog_bit = watchdog;
      if (moving) {
        for (std::size_t ch = 0; ch < 3; ++ch) {
          pkt.dac[ch] = static_cast<std::int16_t>(rng.uniform(-2000.0, 2000.0));
        }
      }
      const CommandBytes bytes = encode_command(pkt);
      capture.push_back(CapturedPacket{tick++, {bytes.begin(), bytes.end()}});
    }
  };
  emit(RobotState::kEStop, 200, false);
  emit(RobotState::kInit, 400, true);
  emit(RobotState::kPedalUp, 300, false);
  emit(RobotState::kPedalDown, 800, true);
  emit(RobotState::kPedalUp, 150, false);
  emit(RobotState::kPedalDown, 600, true);
  return capture;
}

TEST(PacketAnalyzer, FindsStateByteAndWatchdog) {
  PacketAnalyzer analyzer(synthetic_run(1));
  const auto inference = analyzer.infer_state();
  ASSERT_TRUE(inference.ok());
  EXPECT_EQ(inference.value().state_byte_index, 0u);
  EXPECT_EQ(inference.value().watchdog_mask, 0x10);
}

TEST(PacketAnalyzer, RecoversPedalDownTrigger) {
  PacketAnalyzer analyzer(synthetic_run(2));
  const auto inference = analyzer.infer_state();
  ASSERT_TRUE(inference.ok());
  // 4th state to appear == Pedal Down == wire code 0x0F.
  EXPECT_EQ(inference.value().pedal_down_code, 0x0F);
  EXPECT_EQ(inference.value().codes_in_order.size(), 4u);
}

TEST(PacketAnalyzer, TimelineMatchesPhases) {
  PacketAnalyzer analyzer(synthetic_run(3));
  const auto inference = analyzer.infer_state();
  ASSERT_TRUE(inference.ok());
  // E-STOP, Init, PedalUp, PedalDown, PedalUp, PedalDown = 6 segments.
  EXPECT_EQ(inference.value().timeline.size(), 6u);
  EXPECT_EQ(inference.value().timeline.front().start_tick, 0u);
}

TEST(PacketAnalyzer, ByteProfilesSeparateDataFromState) {
  PacketAnalyzer analyzer(synthetic_run(4));
  const auto& profiles = analyzer.byte_profiles();
  ASSERT_EQ(profiles.size(), kCommandPacketSize);
  // Byte 0: few masked values.  DAC low bytes (1,3,5): many values.
  EXPECT_LE(profiles[0].distinct_after_mask, 4u);
  EXPECT_GT(profiles[1].distinct_values, 50u);
  // The paper's observation: stripping the watchdog bit halves Byte 0's
  // cardinality from 8 to 4.
  EXPECT_EQ(profiles[0].distinct_values, 8u);
  EXPECT_EQ(profiles[0].distinct_after_mask, 4u);
}

TEST(PacketAnalyzer, IncompleteRunFailsInference) {
  // A run that never reaches Pedal Down cannot reveal the trigger.
  Pcg32 rng(5);
  std::vector<CapturedPacket> capture;
  bool watchdog = false;
  for (int i = 0; i < 500; ++i) {
    CommandPacket pkt;
    pkt.state = i < 250 ? RobotState::kEStop : RobotState::kInit;
    watchdog = !watchdog;
    pkt.watchdog_bit = watchdog;
    const CommandBytes bytes = encode_command(pkt);
    capture.push_back(CapturedPacket{static_cast<std::uint64_t>(i), {bytes.begin(), bytes.end()}});
  }
  PacketAnalyzer analyzer(std::move(capture));
  EXPECT_FALSE(analyzer.infer_state().ok());
}

TEST(PacketAnalyzer, ValidatesInput) {
  EXPECT_THROW(PacketAnalyzer({}), std::invalid_argument);
  std::vector<CapturedPacket> mixed;
  mixed.push_back(CapturedPacket{0, {1, 2, 3}});
  mixed.push_back(CapturedPacket{1, {1, 2}});
  EXPECT_THROW(PacketAnalyzer(std::move(mixed)), std::invalid_argument);
}

// --- InjectionWrapper (scenario B) ----------------------------------------------------

CommandBytes pedal_down_bytes(std::int16_t dac1 = 100, bool watchdog = false) {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.watchdog_bit = watchdog;
  pkt.dac[1] = dac1;
  return encode_command(pkt);
}

CommandBytes pedal_up_bytes() {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalUp;
  return encode_command(pkt);
}

TEST(InjectionWrapper, OnlyTriggersOnPedalDown) {
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kSetChannel;
  cfg.target_channel = 1;
  cfg.value = 20000;
  InjectionWrapper wrapper(cfg);

  CommandBytes up = pedal_up_bytes();
  EXPECT_TRUE(wrapper.on_packet(up, 0));
  EXPECT_EQ(wrapper.injections(), 0u);
  EXPECT_EQ(decode_command(up, false).value().dac[1], 0);

  CommandBytes down = pedal_down_bytes();
  EXPECT_TRUE(wrapper.on_packet(down, 1));
  EXPECT_EQ(wrapper.injections(), 1u);
  EXPECT_EQ(decode_command(down, false).value().dac[1], 20000);
}

TEST(InjectionWrapper, WatchdogBitDoesNotMaskTrigger) {
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kSetChannel;
  cfg.value = 1234;
  cfg.target_channel = 0;
  InjectionWrapper wrapper(cfg);
  CommandBytes a = pedal_down_bytes(0, false);
  CommandBytes b = pedal_down_bytes(0, true);
  (void)wrapper.on_packet(a, 0);
  (void)wrapper.on_packet(b, 1);
  EXPECT_EQ(wrapper.injections(), 2u);
}

TEST(InjectionWrapper, DelayAndDurationWindow) {
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kSetChannel;
  cfg.value = 9999;
  cfg.target_channel = 0;
  cfg.delay_packets = 3;
  cfg.duration_packets = 2;
  InjectionWrapper wrapper(cfg);
  int corrupted = 0;
  for (int i = 0; i < 10; ++i) {
    CommandBytes bytes = pedal_down_bytes();
    (void)wrapper.on_packet(bytes, static_cast<std::uint64_t>(i));
    if (decode_command(bytes, false).value().dac[0] == 9999) ++corrupted;
  }
  EXPECT_EQ(corrupted, 2);
  EXPECT_EQ(wrapper.injections(), 2u);
  EXPECT_TRUE(wrapper.done());
  ASSERT_TRUE(wrapper.first_injection_tick().has_value());
  EXPECT_EQ(*wrapper.first_injection_tick(), 3u);
}

TEST(InjectionWrapper, AddChannelSaturates) {
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kAddChannel;
  cfg.target_channel = 1;
  cfg.value = 30000;
  InjectionWrapper wrapper(cfg);
  CommandBytes bytes = pedal_down_bytes(10000);
  (void)wrapper.on_packet(bytes, 0);
  EXPECT_EQ(decode_command(bytes, false).value().dac[1], 32767);  // clamped
}

TEST(InjectionWrapper, RandomByteStaysInRange) {
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kRandomByte;
  cfg.target_byte = 4;
  cfg.random_lo = 0;
  cfg.random_hi = 100;  // the paper's "random value between 0 and 100"
  InjectionWrapper wrapper(cfg);
  for (int i = 0; i < 50; ++i) {
    CommandBytes bytes = pedal_down_bytes();
    (void)wrapper.on_packet(bytes, static_cast<std::uint64_t>(i));
    EXPECT_LE(bytes[4], 100);
  }
}

TEST(InjectionWrapper, CorruptedPacketHasStaleChecksum) {
  // The attack does not bother fixing the checksum — and the board does
  // not check it.  Verified decode must fail; board-mode decode succeeds.
  InjectionConfig cfg;
  cfg.mode = InjectionConfig::Mode::kSetChannel;
  cfg.target_channel = 2;
  cfg.value = 11111;
  InjectionWrapper wrapper(cfg);
  CommandBytes bytes = pedal_down_bytes();
  (void)wrapper.on_packet(bytes, 0);
  EXPECT_FALSE(decode_command(bytes, true).ok());
  EXPECT_TRUE(decode_command(bytes, false).ok());
}

// --- Attack engine --------------------------------------------------------------------

TEST(AttackEngine, BuildsScenarioB) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 15000;
  const AttackArtifacts art = build_attack(spec);
  EXPECT_NE(art.usb_write, nullptr);
  EXPECT_EQ(art.console_path, nullptr);
  EXPECT_EQ(art.usb_read, nullptr);
  EXPECT_FALSE(art.math_hooks.has_value());
}

TEST(AttackEngine, BuildsScenarioA) {
  AttackSpec spec;
  spec.variant = AttackVariant::kUserInputInjection;
  spec.magnitude = 5e-4;
  const AttackArtifacts art = build_attack(spec);
  EXPECT_NE(art.console_path, nullptr);
  EXPECT_EQ(art.usb_write, nullptr);
}

TEST(AttackEngine, BuildsMathDrift) {
  AttackSpec spec;
  spec.variant = AttackVariant::kMathDrift;
  spec.magnitude = 1e-8;
  const AttackArtifacts art = build_attack(spec);
  ASSERT_TRUE(art.math_hooks.has_value());
  EXPECT_NE(art.math_hooks->sin, MathHooks::libm().sin);
  reset_math_drift();
}

TEST(AttackEngine, BuildsFeedbackVariants) {
  AttackSpec spec;
  spec.variant = AttackVariant::kEncoderCorruption;
  spec.magnitude = 500;
  EXPECT_NE(build_attack(spec).usb_read, nullptr);
  spec.variant = AttackVariant::kStateSpoof;
  EXPECT_NE(build_attack(spec).usb_read, nullptr);
}

TEST(AttackEngine, NoneBuildsNothing) {
  const AttackArtifacts art = build_attack(AttackSpec{});
  EXPECT_EQ(art.injections(), 0u);
  EXPECT_FALSE(art.first_injection_tick().has_value());
}

TEST(AttackEngine, VariantNamesDistinct) {
  EXPECT_NE(to_string(AttackVariant::kTorqueInjection),
            to_string(AttackVariant::kUserInputInjection));
  EXPECT_EQ(to_string(AttackVariant::kNone), "none");
}

// --- Math drift ------------------------------------------------------------------------

TEST(MathDrift, AccumulatesAndSaturates) {
  MathDriftConfig cfg;
  cfg.drift_per_call = 0.01;
  cfg.max_drift = 0.05;
  const MathHooks hooks = make_drifting_math(cfg);
  for (int i = 0; i < 3; ++i) (void)hooks.sin(0.0);
  EXPECT_NEAR(current_math_drift(), 0.03, 1e-12);
  for (int i = 0; i < 100; ++i) (void)hooks.cos(0.0);
  EXPECT_NEAR(current_math_drift(), 0.05, 1e-12);  // saturated
  EXPECT_NEAR(hooks.sin(0.0), 0.05, 1e-12);        // sin(0) + drift
  reset_math_drift();
  EXPECT_DOUBLE_EQ(current_math_drift(), 0.0);
}

}  // namespace
}  // namespace rg
