// Batched SoA dynamics vs the scalar reference: every lane of a batched
// integration must be *bit-identical* to a scalar integration of that
// lane — the property that lets the campaign engine run homogeneous jobs
// in lockstep without perturbing a byte of the deterministic report.
// Also covers the estimator's predict/commit solve-dedup (one model solve
// per screened tick) and the campaign-level byte-identity of batched vs
// scalar execution.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "attack/attack_engine.hpp"
#include "core/pipeline.hpp"
#include "dynamics/batch_model.hpp"
#include "hw/usb_packet.hpp"
#include "plant/batch_plant.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/lockstep.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/trace.hpp"

namespace rg {
namespace {

using State = RavenDynamicsModel::State;

/// Randomized lane states spanning the normal workspace and hard-stop
/// violations (|q| beyond the limits exercises the branch-free stops).
std::array<State, kBatchLanes> random_states(std::mt19937_64& gen, double span) {
  std::uniform_real_distribution<double> u(-span, span);
  std::array<State, kBatchLanes> states{};
  for (auto& x : states) {
    for (std::size_t i = 0; i < 12; ++i) x[i] = u(gen);
  }
  return states;
}

std::array<Vec3, kBatchLanes> random_currents(std::mt19937_64& gen) {
  std::uniform_real_distribution<double> u(-6.0, 6.0);
  std::array<Vec3, kBatchLanes> currents{};
  for (auto& c : currents) c = {u(gen), u(gen), u(gen)};
  return currents;
}

TEST(BatchDynamics, DerivativeBitIdenticalToScalar) {
  for (bool hard_stops : {false, true}) {
    RavenDynamicsParams params;
    params.enforce_hard_stops = hard_stops;
    const RavenDynamicsModel scalar(params);
    const BatchRavenModel batch(params);

    std::mt19937_64 gen(7);
    for (int round = 0; round < 20; ++round) {
      const auto states = random_states(gen, 3.0);
      const auto currents = random_currents(gen);

      BatchState x;
      BatchLanes3 cur{};
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        x.set_lane(l, states[l]);
        for (std::size_t i = 0; i < 3; ++i) cur[i][l] = currents[l][i];
      }
      BatchLanes3 tau_em;
      batch.tau_em_from_currents(cur, tau_em);
      BatchState dx;
      batch.derivative(x, tau_em, nullptr, nullptr, dx);

      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        const State ref = scalar.derivative(states[l], currents[l]);
        const State got = dx.lane(l);
        for (std::size_t i = 0; i < 12; ++i) {
          EXPECT_EQ(got[i], ref[i]) << "lane " << l << " component " << i
                                    << " hard_stops=" << hard_stops;
        }
      }
    }
  }
}

TEST(BatchDynamics, CableForceBitIdenticalToScalar) {
  const RavenDynamicsParams params;
  const RavenDynamicsModel scalar(params);
  const BatchRavenModel batch(params);

  std::mt19937_64 gen(11);
  const auto states = random_states(gen, 2.0);
  BatchState x;
  for (std::size_t l = 0; l < kBatchLanes; ++l) x.set_lane(l, states[l]);

  BatchLanes3 tension;
  batch.cable_force(x, tension);
  for (std::size_t l = 0; l < kBatchLanes; ++l) {
    const Vec3 ref = scalar.cable_force(states[l]);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(tension[i][l], ref[i]) << "lane " << l << " axis " << i;
    }
  }
}

TEST(BatchDynamics, StepBitIdenticalToScalarForEverySolver) {
  RavenDynamicsParams params;
  params.enforce_hard_stops = true;
  const RavenDynamicsModel scalar(params);
  const BatchRavenModel batch(params);

  std::mt19937_64 gen(23);
  for (SolverKind solver : {SolverKind::kEuler, SolverKind::kMidpoint, SolverKind::kRk4,
                            SolverKind::kRkf45}) {
    auto states = random_states(gen, 2.5);
    const auto currents = random_currents(gen);

    BatchState x;
    BatchLanes3 cur{};
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      x.set_lane(l, states[l]);
      for (std::size_t i = 0; i < 3; ++i) cur[i][l] = currents[l][i];
    }

    // 200 chained substeps: any lane-ordering or expression-shape
    // difference would compound into visible drift long before this.
    for (int step = 0; step < 200; ++step) {
      batch.step(x, cur, 5.0e-5, solver);
      for (std::size_t l = 0; l < kBatchLanes; ++l) {
        states[l] = scalar.step(states[l], currents[l], 5.0e-5, solver);
      }
    }
    for (std::size_t l = 0; l < kBatchLanes; ++l) {
      const State got = x.lane(l);
      for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_EQ(got[i], states[l][i])
            << to_string(solver) << " lane " << l << " component " << i;
      }
    }
  }
}

// --- BatchPlant vs scalar PhysicalRobot ------------------------------------

PlantConfig snapping_plant(std::uint64_t seed) {
  PlantConfig config;
  config.seed = seed;
  // Axis 0 snaps under modest drive so both code paths exercise the
  // overload watch and the post-snap decoupled dynamics.
  config.cable_snap_threshold = {6.0, 40.0, 400.0};
  return config;
}

TEST(BatchPlant, LanesMatchScalarPlantsBitwise) {
  constexpr std::size_t kLanes = 5;
  std::vector<PhysicalRobot> scalar_plants;
  std::vector<PhysicalRobot> batch_plants;
  for (std::size_t l = 0; l < kLanes; ++l) {
    scalar_plants.emplace_back(snapping_plant(100 + l));
    batch_plants.emplace_back(snapping_plant(100 + l));
  }
  std::array<PhysicalRobot*, kLanes> ptrs{};
  for (std::size_t l = 0; l < kLanes; ++l) ptrs[l] = &batch_plants[l];
  BatchPlant batch(std::span<PhysicalRobot* const>{ptrs.data(), kLanes});
  ASSERT_EQ(batch.lanes(), kLanes);

  for (int period = 0; period < 400; ++period) {
    std::array<PlantDrive, kLanes> drives{};
    for (std::size_t l = 0; l < kLanes; ++l) {
      // Deterministic per-lane drive profile: strong enough to hit the
      // axis-0 snap threshold mid-run, with a braked window at the end.
      const double phase = 0.013 * period + 0.4 * static_cast<double>(l);
      drives[l].currents = {6.0 * std::sin(phase), 3.0 * std::cos(phase), 1.5 * std::sin(2.0 * phase)};
      drives[l].brakes_engaged = period >= 320;
      drives[l].wrist_currents = {0.2 * std::sin(phase), 0.1, -0.05};
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      scalar_plants[l].step_control_period(drives[l].currents, drives[l].brakes_engaged,
                                           drives[l].wrist_currents);
    }
    batch.step_control_period(std::span<const PlantDrive>{drives.data(), kLanes});
  }

  bool any_snapped = false;
  for (std::size_t l = 0; l < kLanes; ++l) {
    EXPECT_EQ(scalar_plants[l].snapped_axes(), batch_plants[l].snapped_axes()) << "lane " << l;
    any_snapped = any_snapped || scalar_plants[l].cable_snapped();
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(scalar_plants[l].motor_positions()[i], batch_plants[l].motor_positions()[i])
          << "lane " << l << " axis " << i;
      EXPECT_EQ(scalar_plants[l].motor_velocities()[i], batch_plants[l].motor_velocities()[i])
          << "lane " << l << " axis " << i;
      EXPECT_EQ(scalar_plants[l].joint_positions()[i], batch_plants[l].joint_positions()[i])
          << "lane " << l << " axis " << i;
      EXPECT_EQ(scalar_plants[l].joint_velocities()[i], batch_plants[l].joint_velocities()[i])
          << "lane " << l << " axis " << i;
      EXPECT_EQ(scalar_plants[l].wrist_positions()[i], batch_plants[l].wrist_positions()[i])
          << "lane " << l << " axis " << i;
    }
  }
  // The profile is tuned to snap at least one cable; keep the coverage
  // honest if the physics drifts.
  EXPECT_TRUE(any_snapped);
}

TEST(BatchPlant, CompatibleIgnoresSeedOnly) {
  PlantConfig a;
  PlantConfig b;
  b.seed = a.seed + 99;
  EXPECT_TRUE(BatchPlant::compatible(a, b));
  b.substep = a.substep * 0.5;
  EXPECT_FALSE(BatchPlant::compatible(a, b));
}

// --- estimator solve dedup --------------------------------------------------

TEST(EstimatorSolves, PredictThenCommitSameCommandCostsOneSolve) {
  DynamicModelEstimator estimator;
  estimator.observe_feedback(Vec3{0.1, -0.2, 0.05});
  EXPECT_EQ(estimator.solves(), 0u);

  const std::array<std::int16_t, 3> dac{1200, -800, 300};
  const Prediction pred = estimator.predict(dac);
  ASSERT_TRUE(pred.valid);
  EXPECT_EQ(estimator.solves(), 1u);

  estimator.commit(dac);
  EXPECT_EQ(estimator.solves(), 1u);  // cache hit: no re-integration

  // The cached next-state must be exactly what predict integrated.
  const State after = estimator.state();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(RavenDynamicsModel::motor_pos(after)[i], pred.mpos_next[i]);
    EXPECT_EQ(RavenDynamicsModel::motor_vel(after)[i], pred.mvel_next[i]);
    EXPECT_EQ(RavenDynamicsModel::joint_pos(after)[i], pred.jpos_next[i]);
    EXPECT_EQ(RavenDynamicsModel::joint_vel(after)[i], pred.jvel_next[i]);
  }
}

TEST(EstimatorSolves, CommitOfDifferentCommandReintegrates) {
  DynamicModelEstimator estimator;
  estimator.observe_feedback(Vec3{0.0, 0.0, 0.0});
  (void)estimator.predict(std::array<std::int16_t, 3>{500, 500, 500});
  EXPECT_EQ(estimator.solves(), 1u);
  estimator.commit({0, 0, 0});  // mitigation replaced the command
  EXPECT_EQ(estimator.solves(), 2u);
}

TEST(EstimatorSolves, FeedbackBetweenPredictAndCommitInvalidatesCache) {
  DynamicModelEstimator estimator;
  estimator.observe_feedback(Vec3{0.0, 0.0, 0.0});
  const std::array<std::int16_t, 3> dac{700, -700, 0};
  (void)estimator.predict(dac);
  estimator.observe_feedback(Vec3{0.001, 0.0, 0.0});  // moves the state
  estimator.commit(dac);
  EXPECT_EQ(estimator.solves(), 2u);  // cache correctly discarded
}

TEST(EstimatorSolves, ScreenedPipelineTickCostsOneSolve) {
  PipelineConfig config;
  DetectionThresholds huge;
  huge.motor_vel = huge.motor_acc = huge.joint_vel = Vec3::filled(1.0e18);
  config.detector.thresholds = huge;
  config.detector.ee_jump_limit = 0.0;
  DetectionPipeline pipeline(config);

  pipeline.set_engaged(true);
  pipeline.observe_feedback(Vec3{0.05, 0.05, 0.05});

  CommandPacket cmd;
  cmd.dac = {900, -400, 150};
  const CommandBytes bytes = encode_command(cmd);
  for (std::uint64_t tick = 1; tick <= 5; ++tick) {
    const DetectionPipeline::Outcome out = pipeline.process(std::span{bytes});
    EXPECT_TRUE(out.prediction.valid);
    EXPECT_FALSE(out.alarm);
    // One solve per screened tick — the predict/commit pair shares it.
    EXPECT_EQ(pipeline.estimator().solves(), tick);
    pipeline.observe_feedback(Vec3{0.05, 0.05, 0.05});
  }
}

// --- campaign-level byte identity -------------------------------------------

std::vector<CampaignJob> homogeneous_campaign() {
  std::vector<CampaignJob> jobs;
  DetectionThresholds tight;
  tight.motor_vel = tight.motor_acc = tight.joint_vel = Vec3::filled(1.0);
  for (int i = 0; i < 10; ++i) {
    CampaignJob job;
    job.params.seed = 400 + static_cast<std::uint64_t>(i) * 13;
    job.params.duration_sec = 1.5;
    job.thresholds = tight;
    if (i % 2 == 1) {
      job.attack.variant = AttackVariant::kTorqueInjection;
      job.attack.magnitude = 10000 + 1500 * i;
      job.attack.duration_packets = 48;
      job.attack.delay_packets = 280 + static_cast<std::uint32_t>(i) * 37;
    }
    job.label = "batchjob" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::string deterministic_report(int workers, int lanes) {
  CampaignOptions options;
  options.jobs = workers;
  options.lanes = lanes;
  const CampaignReport report = CampaignRunner(options).run(homogeneous_campaign());
  std::ostringstream os;
  report.write_json(os, /*include_timing=*/false);
  return os.str();
}

TEST(BatchCampaign, ReportByteIdenticalAcrossLaneAndWorkerCounts) {
  const std::string scalar = deterministic_report(/*workers=*/1, /*lanes=*/1);
  EXPECT_EQ(scalar, deterministic_report(1, 8));
  EXPECT_EQ(scalar, deterministic_report(3, 8));
  EXPECT_EQ(scalar, deterministic_report(8, 8));
  EXPECT_EQ(scalar, deterministic_report(8, 3));
}

TEST(BatchCampaign, LockstepGroupMatchesSoloRunsIncludingTraces) {
  // Three sims with different seeds/attacks but shared physics: run them
  // once solo and once as a lockstep group; traces must match bitwise.
  const auto build = [](std::uint64_t seed, bool attacked) {
    CampaignJob job;
    job.params.seed = seed;
    job.params.duration_sec = 1.2;
    DetectionThresholds tight;
    tight.motor_vel = tight.motor_acc = tight.joint_vel = Vec3::filled(1.0);
    job.thresholds = tight;
    if (attacked) {
      job.attack.variant = AttackVariant::kTorqueInjection;
      job.attack.magnitude = 16000;
      job.attack.duration_packets = 64;
      job.attack.delay_packets = 300;
      job.attack.seed = 77;
    }
    return job;
  };
  const std::array<CampaignJob, 3> jobs{build(21, false), build(22, true), build(23, true)};

  auto run_one = [](const CampaignJob& job, TraceRecorder& trace,
                    SurgicalSim* group_lane[], std::size_t lane) {
    SimConfig cfg = make_session(job.params, job.thresholds, job.mitigation);
    auto sim = std::make_unique<SurgicalSim>(std::move(cfg));
    sim->set_trace(&trace);
    AttackSpec seeded = job.attack;
    if (seeded.seed == 0) seeded.seed = job.params.seed * 131 + 17;
    sim->install(build_attack(seeded));
    if (group_lane == nullptr) {
      sim->run(job.params.duration_sec);
    } else {
      group_lane[lane] = sim.get();
    }
    return sim;
  };

  std::array<TraceRecorder, 3> solo_traces;
  std::vector<std::unique_ptr<SurgicalSim>> solo_sims;
  for (std::size_t k = 0; k < 3; ++k) {
    solo_sims.push_back(run_one(jobs[k], solo_traces[k], nullptr, k));
  }

  std::array<TraceRecorder, 3> group_traces;
  SurgicalSim* lanes[3] = {};
  std::vector<std::unique_ptr<SurgicalSim>> group_sims;
  for (std::size_t k = 0; k < 3; ++k) {
    group_sims.push_back(run_one(jobs[k], group_traces[k], lanes, k));
  }
  LockstepGroup group(std::span<SurgicalSim* const>{lanes, 3});
  group.run(jobs[0].params.duration_sec);

  for (std::size_t k = 0; k < 3; ++k) {
    const auto solo = solo_traces[k].samples();
    const auto batched = group_traces[k].samples();
    ASSERT_EQ(solo.size(), batched.size()) << "lane " << k;
    for (std::size_t t = 0; t < solo.size(); ++t) {
      EXPECT_EQ(solo[t].tick, batched[t].tick);
      for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(solo[t].ee_truth[i], batched[t].ee_truth[i]) << "lane " << k << " tick " << t;
        EXPECT_EQ(solo[t].motor_pos[i], batched[t].motor_pos[i]) << "lane " << k << " tick " << t;
        EXPECT_EQ(solo[t].motor_vel[i], batched[t].motor_vel[i]) << "lane " << k << " tick " << t;
        EXPECT_EQ(solo[t].joint_pos[i], batched[t].joint_pos[i]) << "lane " << k << " tick " << t;
        EXPECT_EQ(solo[t].dac[i], batched[t].dac[i]) << "lane " << k << " tick " << t;
      }
      EXPECT_EQ(solo[t].state, batched[t].state) << "lane " << k << " tick " << t;
      EXPECT_EQ(solo[t].brakes, batched[t].brakes) << "lane " << k << " tick " << t;
      EXPECT_EQ(solo[t].detector_alarm, batched[t].detector_alarm)
          << "lane " << k << " tick " << t;
      EXPECT_EQ(solo[t].predicted_ee_disp, batched[t].predicted_ee_disp)
          << "lane " << k << " tick " << t;
    }
    EXPECT_EQ(solo_sims[k]->outcome().max_ee_jump_window,
              group_sims[k]->outcome().max_ee_jump_window);
    EXPECT_EQ(solo_sims[k]->outcome().detector_alarm_tick,
              group_sims[k]->outcome().detector_alarm_tick);
    EXPECT_EQ(solo_sims[k]->outcome().cable_snapped, group_sims[k]->outcome().cable_snapped);
  }
}

}  // namespace
}  // namespace rg
