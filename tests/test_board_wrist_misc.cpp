// Coverage for board wrist channels, feedback brake flag, and misc
// hardware plumbing added with the instrument axes.
#include <gtest/gtest.h>

#include "hw/plc.hpp"
#include "hw/usb_board.hpp"

namespace rg {
namespace {

CommandBytes command_with_wrist_dacs() {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac = {100, 200, 300, 4000, -5000, 6000, 0, 0};
  return encode_command(pkt);
}

TEST(UsbBoardWrist, WristCurrentsFollowChannels3To5) {
  Plc plc;
  UsbBoard board(plc);
  ASSERT_TRUE(board.receive_command(command_with_wrist_dacs()).ok());
  const Vec3 wrist = board.wrist_currents();
  EXPECT_NEAR(wrist[0], 4000.0 / 32767.0 * 10.0, 1e-6);
  EXPECT_NEAR(wrist[1], -5000.0 / 32767.0 * 10.0, 1e-6);
  EXPECT_NEAR(wrist[2], 6000.0 / 32767.0 * 10.0, 1e-6);
}

TEST(UsbBoardWrist, WristCurrentsZeroBeforeCommand) {
  Plc plc;
  UsbBoard board(plc);
  EXPECT_EQ(board.wrist_currents(), Vec3::zero());
}

TEST(UsbBoardWrist, WristEncodersRideChannels3To5) {
  Plc plc;
  UsbBoard board(plc);
  board.latch_encoders(MotorVector{1.0, 2.0, 3.0}, Vec3{0.5, -0.7, 0.9});
  EXPECT_NEAR(board.encoder_angle(3), 0.5, 0.01);
  EXPECT_NEAR(board.encoder_angle(4), -0.7, 0.01);
  EXPECT_NEAR(board.encoder_angle(5), 0.9, 0.01);

  const auto decoded = decode_feedback(board.build_feedback(), true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(decoded.value().encoders[4], 0);
}

TEST(UsbBoardWrist, FeedbackBrakeFlagTracksPlc) {
  Plc plc;
  UsbBoard board(plc);
  CommandPacket engaged;
  engaged.state = RobotState::kPedalDown;
  ASSERT_TRUE(board.receive_command(encode_command(engaged)).ok());
  EXPECT_FALSE(decode_feedback(board.build_feedback(), true).value().brakes_engaged);

  CommandPacket parked;
  parked.state = RobotState::kPedalUp;
  ASSERT_TRUE(board.receive_command(encode_command(parked)).ok());
  EXPECT_TRUE(decode_feedback(board.build_feedback(), true).value().brakes_engaged);
}

TEST(UsbBoardWrist, PerChannelConfigApplies) {
  Plc plc;
  MotorChannelConfig cfg;
  cfg.full_scale_current = 5.0;  // weaker drive stage
  UsbBoard board(plc, cfg);
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac[0] = 32767;
  ASSERT_TRUE(board.receive_command(encode_command(pkt)).ok());
  EXPECT_NEAR(board.modeled_currents()[0], 5.0, 1e-3);
}

}  // namespace
}  // namespace rg
