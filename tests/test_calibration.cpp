// Streaming threshold calibration: the quantile sketch, its merge
// determinism, the batch-agreement guarantee, the CalibrationSession
// campaign path, and the epoch-based ThresholdStore v3 format.
//
// The load-bearing claims verified here (docs/thresholds.md):
//   * exact phase == math/stats.hpp percentile, bit for bit, on the
//     paper's 600-run corpus (ε = 0);
//   * estimator phase within kEstimatorEpsilon at the target quantile;
//   * merged sketches are digest-identical at any partition of the same
//     sample set (worker × lane × shard invariance);
//   * epoch commits round-trip, rollbacks keep history, and truncated or
//     corrupt v3 files fail explicitly instead of yielding thresholds.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/quantile_sketch.hpp"
#include "core/thresholds.hpp"
#include "math/stats.hpp"
#include "sim/calibration.hpp"
#include "sim/campaign.hpp"
#include "sim/threshold_store.hpp"

namespace rg {
namespace {

std::vector<double> corpus(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 10.0);
  std::vector<double> xs(n);
  for (double& x : xs) x = dist(rng);
  return xs;
}

// --- QuantileSketch: exact phase ------------------------------------------------------

TEST(QuantileSketch, ExactPhaseBitMatchesBatchPercentile) {
  // The paper's corpus: 600 per-run maxima — well inside kExactCapacity.
  const std::vector<double> xs = corpus(600, 7);
  QuantileSketch sketch;
  for (double x : xs) sketch.add(x);
  ASSERT_TRUE(sketch.exact());
  ASSERT_EQ(sketch.count(), 600u);
  for (double p : {0.0, 0.25, 0.5, 0.9, 0.9985, 1.0}) {
    const Result<double> q = sketch.quantile(p);
    ASSERT_TRUE(q.ok());
    // Bit-exact agreement with the batch pass, not just approximate.
    EXPECT_EQ(q.value(), percentile(xs, 100.0 * p)) << "p=" << p;
  }
}

TEST(QuantileSketch, EmptyAndBadArguments) {
  const QuantileSketch sketch;
  EXPECT_EQ(sketch.quantile(0.5).error().code(), ErrorCode::kNotReady);
  QuantileSketch fed;
  fed.add(1.0);
  EXPECT_EQ(fed.quantile(-0.1).error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fed.quantile(1.1).error().code(), ErrorCode::kInvalidArgument);
  EXPECT_THROW(QuantileSketch{0.0}, std::invalid_argument);
  EXPECT_THROW(QuantileSketch{1.0}, std::invalid_argument);
}

TEST(QuantileSketch, NonFiniteSamplesIgnored) {
  QuantileSketch sketch;
  sketch.add(std::numeric_limits<double>::quiet_NaN());
  sketch.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(sketch.count(), 0u);
  sketch.add(2.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.quantile(0.5).value(), 2.0);
}

TEST(QuantileSketch, ExactMergePartitionInvariant) {
  const std::vector<double> xs = corpus(600, 11);
  QuantileSketch whole;
  for (double x : xs) whole.add(x);

  for (std::size_t parts : {2u, 3u, 5u, 8u}) {
    std::vector<QuantileSketch> shards(parts, QuantileSketch{});
    for (std::size_t i = 0; i < xs.size(); ++i) shards[i % parts].add(xs[i]);
    QuantileSketch merged;
    for (const QuantileSketch& s : shards) merged.merge(s);
    ASSERT_TRUE(merged.exact());
    EXPECT_EQ(merged.digest(), whole.digest()) << parts << " partitions";
    EXPECT_EQ(merged.quantile(0.9985).value(), whole.quantile(0.9985).value());
  }
}

TEST(QuantileSketch, MergeRejectsMismatchedTargets) {
  QuantileSketch a(0.9985);
  QuantileSketch b(0.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// --- QuantileSketch: estimator phase --------------------------------------------------

TEST(QuantileSketch, EstimatorPhaseWithinEpsilon) {
  // 50k uniform samples on [0, 10): true target quantile is 9.985.
  const std::size_t n = 50000;
  const std::vector<double> xs = corpus(n, 13);
  QuantileSketch sketch;
  for (double x : xs) sketch.add(x);
  EXPECT_FALSE(sketch.exact());
  EXPECT_EQ(sketch.count(), n);
  const double truth = percentile(xs, 99.85);
  const double est = sketch.quantile(sketch.target_quantile()).value();
  EXPECT_NEAR(est, truth, QuantileSketch::kEstimatorEpsilon * truth);
}

TEST(QuantileSketch, EstimatorMergeDeterministicAndBounded) {
  const std::vector<double> xs = corpus(40000, 17);
  QuantileSketch a, b;
  for (std::size_t i = 0; i < xs.size(); ++i) (i % 2 == 0 ? a : b).add(xs[i]);

  QuantileSketch m1 = a;
  m1.merge(b);
  QuantileSketch m2 = a;
  m2.merge(b);
  // Same states, same order => byte-identical result.
  EXPECT_EQ(m1.digest(), m2.digest());
  const double truth = percentile(xs, 99.85);
  const double est = m1.quantile(m1.target_quantile()).value();
  EXPECT_NEAR(est, truth, QuantileSketch::kEstimatorEpsilon * truth);
}

// --- ThresholdSketch ------------------------------------------------------------------

Prediction run_maxima_prediction(double scale) {
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3{1.0 * scale, 2.0 * scale, 3.0 * scale};
  p.motor_instant_acc = Vec3{10.0 * scale, 20.0 * scale, 30.0 * scale};
  p.joint_instant_vel = Vec3{0.1 * scale, 0.2 * scale, 0.3 * scale};
  return p;
}

TEST(ThresholdSketch, BitMatchesThresholdLearnerOn600Runs) {
  // Identical per-run maxima into both paths: the batch learner and the
  // streaming sketch must extract byte-identical thresholds.
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> dist(0.5, 4.0);
  ThresholdLearner learner;
  ThresholdSketch sketch;
  for (int run = 0; run < 600; ++run) {
    const Prediction p = run_maxima_prediction(dist(rng));
    learner.observe(p);
    learner.end_run();
    sketch.commit_maxima(p.motor_instant_vel, p.motor_instant_acc, p.joint_instant_vel);
  }
  const DetectionThresholds batch = learner.learn(99.85, 1.1).value();
  const DetectionThresholds stream = sketch.extract(99.85, 1.1).value();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(stream.motor_vel[i], batch.motor_vel[i]) << i;
    EXPECT_EQ(stream.motor_acc[i], batch.motor_acc[i]) << i;
    EXPECT_EQ(stream.joint_vel[i], batch.joint_vel[i]) << i;
  }
}

TEST(ThresholdSketch, ExtractValidates) {
  ThresholdSketch empty;
  EXPECT_EQ(empty.extract().error().code(), ErrorCode::kNotReady);
  ThresholdSketch fed;
  fed.commit_maxima(Vec3::filled(1.0), Vec3::filled(1.0), Vec3::filled(1.0));
  EXPECT_EQ(fed.extract(101.0).error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(fed.extract(99.85, 0.0).error().code(), ErrorCode::kInvalidArgument);
}

TEST(ThresholdSketch, ObserveFeedsAllNineAxes) {
  ThresholdSketch sketch;
  sketch.observe(run_maxima_prediction(1.0));
  sketch.observe(Prediction{});  // invalid -> ignored
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_EQ(sketch.axis(0, 2).quantile(0.5).value(), 3.0);   // motor_vel z
  EXPECT_EQ(sketch.axis(1, 0).quantile(0.5).value(), 10.0);  // motor_acc x
  EXPECT_EQ(sketch.axis(2, 1).quantile(0.5).value(), 0.2);   // joint_vel y
}

TEST(ThresholdSketch, MergePartitionInvariantDigests) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> dist(0.5, 4.0);
  std::vector<Prediction> runs;
  for (int i = 0; i < 240; ++i) runs.push_back(run_maxima_prediction(dist(rng)));

  const auto merged_over = [&](std::size_t parts) {
    std::vector<ThresholdSketch> shards(parts, ThresholdSketch{});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const Prediction& p = runs[i];
      shards[i % parts].commit_maxima(p.motor_instant_vel, p.motor_instant_acc,
                                      p.joint_instant_vel);
    }
    ThresholdSketch out;
    for (const ThresholdSketch& s : shards) out.merge(s);
    return out.digest();
  };
  const std::uint64_t reference = merged_over(1);
  EXPECT_EQ(merged_over(2), reference);
  EXPECT_EQ(merged_over(4), reference);
  EXPECT_EQ(merged_over(7), reference);
}

// --- check_drift ----------------------------------------------------------------------

TEST(CheckDrift, GatesOnSamplesAndFindsWorstAxis) {
  DetectionThresholds committed;
  committed.motor_vel = Vec3::filled(2.0);
  committed.motor_acc = Vec3::filled(20.0);
  committed.joint_vel = Vec3::filled(0.2);

  ThresholdSketch sketch;
  // Every observation doubles the committed joint_vel z-axis budget; the
  // other axes stay within limits.
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3::filled(1.0);
  p.motor_instant_acc = Vec3::filled(10.0);
  p.joint_instant_vel = Vec3{0.1, 0.1, 0.4};
  for (int i = 0; i < 64; ++i) sketch.observe(p);

  // Below min_samples: never drifted, whatever the data says.
  EXPECT_FALSE(check_drift(sketch, committed, 99.85, 1.25, 128).drifted);

  const DriftVerdict verdict = check_drift(sketch, committed, 99.85, 1.25, 32);
  ASSERT_TRUE(verdict.drifted);
  EXPECT_EQ(verdict.samples, 64u);
  EXPECT_EQ(verdict.worst.variable, 2u);  // joint_vel
  EXPECT_EQ(verdict.worst.axis, 2u);
  EXPECT_DOUBLE_EQ(verdict.worst.ratio, 0.4 / 0.2);

  // A generous ratio ceiling tolerates the same data.
  EXPECT_FALSE(check_drift(sketch, committed, 99.85, 2.5, 32).drifted);
}

// --- CalibrationSession + campaign ----------------------------------------------------

TEST(CalibrationSession, CommitsPerRunMaxima) {
  CalibrationSession session;
  session.observe(run_maxima_prediction(1.0));
  session.observe(run_maxima_prediction(3.0));  // the run's maxima
  EXPECT_EQ(session.runs(), 0u);                // nothing until end_run
  session.end_run();
  EXPECT_EQ(session.runs(), 1u);
  const DetectionThresholds th = session.extract(100.0, 1.0).value();
  EXPECT_EQ(th.motor_vel[0], 3.0);
  EXPECT_EQ(th.motor_acc[2], 90.0);

  CalibrationSession empty;
  EXPECT_EQ(empty.extract().error().code(), ErrorCode::kNotReady);
}

TEST(CalibrationSession, CampaignDigestInvariantAcrossWorkers) {
  SessionParams base;
  base.seed = 42;
  base.duration_sec = 2.0;
  LearnOptions serial;
  serial.jobs = 1;
  LearnOptions parallel;
  parallel.jobs = 4;
  const Result<CalibrationSession> a = run_calibration_campaign(base, 8, serial);
  const Result<CalibrationSession> b = run_calibration_campaign(base, 8, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().runs(), 8u);
  EXPECT_EQ(a.value().digest(), b.value().digest());

  const DetectionThresholds ta = a.value().extract().value();
  const DetectionThresholds tb = b.value().extract().value();
  EXPECT_EQ(ta.motor_vel, tb.motor_vel);
  EXPECT_EQ(ta.motor_acc, tb.motor_acc);
  EXPECT_EQ(ta.joint_vel, tb.joint_vel);

  EXPECT_EQ(run_calibration_campaign(base, 0).error().code(), ErrorCode::kInvalidArgument);
}

// --- ThresholdStore v3 corruption -----------------------------------------------------

DetectionThresholds simple_thresholds() {
  DetectionThresholds th;
  th.motor_vel = Vec3{1.0, 2.0, 3.0};
  th.motor_acc = Vec3{10.0, 20.0, 30.0};
  th.joint_vel = Vec3{0.1, 0.2, 0.3};
  return th;
}

TEST(ThresholdStoreV3, TruncatedEpochRecordFailsExplicitly) {
  const std::string path = "/tmp/rg_test_cal_truncated.txt";
  {
    ThresholdStore store(path);
    ASSERT_TRUE(store.commit(simple_thresholds(), {}).ok());
  }
  // Chop the value line in half: the record header parses, the payload
  // must not.
  std::string text;
  {
    std::ifstream is(path);
    std::getline(is, text, '\0');
  }
  {
    std::ofstream os(path, std::ios::trunc);
    os << text.substr(0, text.size() - 20);
  }
  ThresholdStore store(path);
  const auto active = store.active();
  ASSERT_FALSE(active.ok());
  EXPECT_EQ(active.error().code(), ErrorCode::kMalformedPacket);
  std::filesystem::remove(path);
}

TEST(ThresholdStoreV3, GarbageAndDanglingActiveFail) {
  const std::string path = "/tmp/rg_test_cal_garbage.txt";
  {
    std::ofstream os(path);
    os << "raven-guard-thresholds 3\nnot-an-epoch 12\n";
  }
  ThresholdStore garbage(path);
  EXPECT_EQ(garbage.active().error().code(), ErrorCode::kMalformedPacket);

  {
    std::ofstream os(path, std::ios::trunc);
    os << "raven-guard-thresholds 3\n"
          "epoch 0 parent -1 runs 1 percentile 99.85 margin 1 source test\n"
          "1 2 3 4 5 6 7 8 9\n"
          "active 7\n";  // names an epoch that does not exist
  }
  ThresholdStore dangling(path);
  EXPECT_EQ(dangling.active().error().code(), ErrorCode::kMalformedPacket);
  EXPECT_EQ(dangling.history().error().code(), ErrorCode::kMalformedPacket);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rg
