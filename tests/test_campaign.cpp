// Tests for the campaign engine: determinism across worker counts,
// cancellation on failure, telemetry, and the JSON report.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/campaign.hpp"
#include "sim/experiment.hpp"

namespace rg {
namespace {

SessionParams quick(std::uint64_t seed) {
  SessionParams p;
  p.seed = seed;
  p.duration_sec = 2.0;
  return p;
}

/// A 16-job mixed campaign: fault-free, attacked, mitigated sessions.
std::vector<CampaignJob> mixed_campaign() {
  std::vector<CampaignJob> jobs;
  DetectionThresholds tight;
  tight.motor_vel = tight.motor_acc = tight.joint_vel = Vec3::filled(1.0);
  for (int i = 0; i < 16; ++i) {
    CampaignJob job;
    job.params = quick(100 + static_cast<std::uint64_t>(i) * 7);
    if (i % 2 == 1) {
      job.attack.variant = AttackVariant::kTorqueInjection;
      job.attack.magnitude = 12000 + 2000 * i;
      job.attack.duration_packets = 64;
      job.attack.delay_packets = 300 + static_cast<std::uint32_t>(i) * 41;
      job.attack.seed = 9000 + static_cast<std::uint64_t>(i) * 11;
    }
    if (i % 4 == 3) {
      job.thresholds = tight;
      job.mitigation = MitigationMode::kArmed;
    }
    job.label = "job" + std::to_string(i);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

CampaignReport run_with_jobs(int workers) {
  CampaignOptions options;
  options.jobs = workers;
  return CampaignRunner(options).run(mixed_campaign());
}

void expect_identical(const CampaignReport& a, const CampaignReport& b) {
  ASSERT_EQ(a.jobs(), b.jobs());
  for (std::size_t i = 0; i < a.jobs(); ++i) {
    const AttackRunResult& ra = a.results[i].run;
    const AttackRunResult& rb = b.results[i].run;
    EXPECT_EQ(a.results[i].index, i);
    EXPECT_EQ(a.results[i].label, b.results[i].label);
    EXPECT_EQ(ra.injections, rb.injections) << "job " << i;
    EXPECT_EQ(ra.first_injection_tick, rb.first_injection_tick) << "job " << i;
    EXPECT_EQ(ra.outcome.max_ee_jump_window, rb.outcome.max_ee_jump_window) << "job " << i;
    EXPECT_EQ(ra.outcome.max_ee_jump_1ms, rb.outcome.max_ee_jump_1ms) << "job " << i;
    EXPECT_EQ(ra.outcome.max_ee_jump_2ms, rb.outcome.max_ee_jump_2ms) << "job " << i;
    EXPECT_EQ(ra.outcome.adverse_impact_tick, rb.outcome.adverse_impact_tick) << "job " << i;
    EXPECT_EQ(ra.outcome.raven_fault_tick, rb.outcome.raven_fault_tick) << "job " << i;
    EXPECT_EQ(ra.outcome.plc_estop_tick, rb.outcome.plc_estop_tick) << "job " << i;
    EXPECT_EQ(ra.outcome.detector_alarm_tick, rb.outcome.detector_alarm_tick) << "job " << i;
    EXPECT_EQ(ra.outcome.cable_snapped, rb.outcome.cable_snapped) << "job " << i;
  }
  EXPECT_EQ(a.counters.impacts, b.counters.impacts);
  EXPECT_EQ(a.counters.detector_alarms, b.counters.detector_alarms);
  EXPECT_EQ(a.counters.injections, b.counters.injections);
  EXPECT_EQ(a.counters.ticks, b.counters.ticks);
}

TEST(Campaign, BitIdenticalAcrossWorkerCounts) {
  const CampaignReport serial = run_with_jobs(1);
  const CampaignReport parallel8 = run_with_jobs(8);
  EXPECT_EQ(serial.workers, 1);
  EXPECT_GT(parallel8.workers, 1);
  expect_identical(serial, parallel8);
  // An odd, non-divisor worker count must not change the results either.
  expect_identical(serial, run_with_jobs(3));
}

TEST(Campaign, LearnedThresholdsIdenticalAcrossWorkerCounts) {
  const SessionParams base = quick(42);
  LearnOptions serial;
  serial.jobs = 1;
  LearnOptions parallel;
  parallel.jobs = 8;
  const DetectionThresholds a = learn_thresholds(base, 16, serial).value();
  const DetectionThresholds b = learn_thresholds(base, 16, parallel).value();
  EXPECT_EQ(a.motor_vel, b.motor_vel);
  EXPECT_EQ(a.motor_acc, b.motor_acc);
  EXPECT_EQ(a.joint_vel, b.joint_vel);
}

TEST(Campaign, ThrowingJobCancelsCampaign) {
  std::vector<CampaignJob> jobs;
  std::atomic<int> executed{0};
  for (int i = 0; i < 24; ++i) {
    CampaignJob job;
    job.params = quick(200 + static_cast<std::uint64_t>(i));
    job.body = [i, &executed]() -> AttackRunResult {
      ++executed;
      if (i == 5) throw std::runtime_error("injected failure");
      return AttackRunResult{};
    };
    jobs.push_back(std::move(job));
  }
  CampaignOptions options;
  options.jobs = 4;
  const CampaignRunner runner(options);
  try {
    (void)runner.run(std::move(jobs));
    FAIL() << "expected CampaignError";
  } catch (const CampaignError& e) {
    EXPECT_EQ(e.job_index(), 5u);
    EXPECT_NE(std::string(e.what()).find("injected failure"), std::string::npos);
  }
  // Cancellation: workers stop pulling new jobs after the failure, so not
  // all 24 bodies may run — but the failing one certainly did.
  EXPECT_GE(executed.load(), 1);
  EXPECT_LE(executed.load(), 24);
}

TEST(Campaign, SerialFailureSkipsRemainingJobs) {
  std::vector<CampaignJob> jobs;
  int executed = 0;
  for (int i = 0; i < 8; ++i) {
    CampaignJob job;
    job.params = quick(300 + static_cast<std::uint64_t>(i));
    job.body = [i, &executed]() -> AttackRunResult {
      ++executed;
      if (i == 2) throw std::runtime_error("boom");
      return AttackRunResult{};
    };
    jobs.push_back(std::move(job));
  }
  CampaignOptions options;
  options.jobs = 1;
  EXPECT_THROW((void)CampaignRunner(options).run(std::move(jobs)), CampaignError);
  EXPECT_EQ(executed, 3);  // jobs 0,1,2 ran; 3..7 cancelled
}

TEST(Campaign, ProgressReportsEveryJob) {
  std::vector<CampaignJob> jobs;
  for (int i = 0; i < 6; ++i) {
    CampaignJob job;
    job.params = quick(400 + static_cast<std::uint64_t>(i));
    job.body = []() { return AttackRunResult{}; };
    jobs.push_back(std::move(job));
  }
  std::size_t events = 0;
  std::size_t last_completed = 0;
  CampaignOptions options;
  options.jobs = 2;
  options.progress = [&](const CampaignProgress& p) {
    ++events;
    EXPECT_EQ(p.total, 6u);
    EXPECT_GT(p.completed, last_completed);  // monotone under the lock
    last_completed = p.completed;
    EXPECT_LT(p.index, 6u);
  };
  const CampaignReport report = CampaignRunner(options).run(std::move(jobs));
  EXPECT_EQ(events, 6u);
  EXPECT_EQ(report.jobs(), 6u);
}

TEST(Campaign, ReportTelemetryAndCounters) {
  CampaignOptions options;
  options.jobs = 2;
  std::vector<CampaignJob> jobs;
  for (int i = 0; i < 4; ++i) {
    CampaignJob job;
    job.params = quick(500 + static_cast<std::uint64_t>(i) * 3);
    job.attack.variant = AttackVariant::kTorqueInjection;
    job.attack.magnitude = 26000;
    job.attack.duration_packets = 96;
    job.attack.delay_packets = 400;
    job.attack.seed = 1000 + static_cast<std::uint64_t>(i);
    jobs.push_back(std::move(job));
  }
  const CampaignReport report = CampaignRunner(options).run(std::move(jobs));
  EXPECT_EQ(report.jobs(), 4u);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.session_ms, 0.0);
  EXPECT_GT(report.counters.ticks, 0u);
  EXPECT_GT(report.counters.injections, 0u);
  EXPECT_GT(report.ticks_per_sec(), 0.0);
  for (const CampaignJobResult& r : report.results) {
    EXPECT_GT(r.ticks, 0u);
    EXPECT_GE(r.wall_ms, 0.0);
    EXPECT_GE(r.queue_wait_ms, 0.0);
  }
  // The per-job timing histograms see every job exactly once.
  EXPECT_EQ(report.exec_us.count, 4u);
  EXPECT_EQ(report.queue_wait_us.count, 4u);
  EXPECT_GT(report.exec_us.max, 0u);
  EXPECT_GE(report.exec_us.percentile(99.0), report.exec_us.percentile(50.0));
}

TEST(Campaign, JsonReportIsWellFormed) {
  CampaignOptions options;
  options.jobs = 1;
  std::vector<CampaignJob> jobs;
  CampaignJob job;
  job.params = quick(600);
  job.label = "needs \"escaping\"\\";
  jobs.push_back(std::move(job));
  const CampaignReport report = CampaignRunner(options).run(std::move(jobs));

  std::ostringstream os;
  report.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"rg.campaign.report/2\""), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"needs \\\"escaping\\\"\\\\\""), std::string::npos);
  EXPECT_NE(json.find("\"results\""), std::string::npos);
  EXPECT_NE(json.find("\"timing\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"exec_ms\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for the schema.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // The timing section is strictly additive: stripping it must leave a
  // report with no wall-clock-dependent field at all.
  std::ostringstream stripped;
  report.write_json(stripped, /*include_timing=*/false);
  EXPECT_EQ(stripped.str().find("\"timing\""), std::string::npos);
  EXPECT_EQ(stripped.str().find("wall_ms"), std::string::npos);
  EXPECT_EQ(stripped.str().find("workers"), std::string::npos);
}

TEST(Campaign, TimingStrippedJsonIdenticalAcrossWorkerCounts) {
  // The report/2 determinism contract as a plain string comparison: with
  // the "timing" section omitted, the serialized report must be
  // byte-identical for any worker count — telemetry attached or not.
  const auto render = [](const CampaignReport& r) {
    std::ostringstream os;
    r.write_json(os, /*include_timing=*/false);
    return os.str();
  };
  const std::string serial = render(run_with_jobs(1));
  EXPECT_EQ(serial, render(run_with_jobs(3)));
  EXPECT_EQ(serial, render(run_with_jobs(8)));
}

TEST(Campaign, RunAttackSessionMatchesSingleJobCampaign) {
  // The redesigned run_attack_session() is a thin wrapper over the
  // campaign executor; a one-job campaign must agree exactly.
  SessionParams p = quick(700);
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 20000;
  spec.duration_packets = 64;
  spec.delay_packets = 350;
  spec.seed = 77;
  const AttackRunResult direct = run_attack_session(p, spec, std::nullopt);

  CampaignJob job;
  job.params = p;
  job.attack = spec;
  CampaignOptions options;
  options.jobs = 1;
  const CampaignReport report = CampaignRunner(options).run({std::move(job)});
  const AttackRunResult& via_campaign = report.results[0].run;
  EXPECT_EQ(direct.injections, via_campaign.injections);
  EXPECT_EQ(direct.outcome.max_ee_jump_window, via_campaign.outcome.max_ee_jump_window);
  EXPECT_EQ(direct.outcome.detector_alarm_tick, via_campaign.outcome.detector_alarm_tick);
}

TEST(Campaign, DefaultJobsRespectsEnvironment) {
  EXPECT_GE(default_campaign_jobs(), 1);
}

}  // namespace
}  // namespace rg
