// Unit tests for the common module: error handling, RNG, ring buffer,
// simulation clock, robot state codes.
#include <gtest/gtest.h>

#include <set>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/robot_state.hpp"
#include "common/units.hpp"

namespace rg {
namespace {

// --- Result / Status --------------------------------------------------------

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> r = Error{ErrorCode::kOutOfRange, "nope"};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(r.error().message(), "nope");
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = Error{ErrorCode::kInternal, "boom"};
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string{"hello"};
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(Status, DefaultIsSuccess) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_THROW((void)s.error(), std::logic_error);
}

TEST(Status, CarriesError) {
  Status s = Error{ErrorCode::kTimeout, "late"};
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code(), ErrorCode::kTimeout);
}

TEST(ErrorToString, IncludesCodeAndMessage) {
  Error e{ErrorCode::kMalformedPacket, "18 bytes expected"};
  EXPECT_EQ(e.to_string(), "malformed_packet: 18 bytes expected");
}

TEST(ErrorCodeNames, AllDistinct) {
  std::set<std::string_view> names;
  for (auto code : {ErrorCode::kInvalidArgument, ErrorCode::kOutOfRange,
                    ErrorCode::kMalformedPacket, ErrorCode::kChecksumMismatch,
                    ErrorCode::kSafetyViolation, ErrorCode::kNotReady, ErrorCode::kUnreachable,
                    ErrorCode::kTimeout, ErrorCode::kInternal}) {
    names.insert(to_string(code));
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(Require, ThrowsOnViolation) {
  EXPECT_NO_THROW(require(true, "fine"));
  EXPECT_THROW(require(false, "broken"), std::invalid_argument);
}

// --- Pcg32 ------------------------------------------------------------------

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformRangeRespectsBounds) {
  Pcg32 rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Pcg32, UniformIntInclusiveBounds) {
  Pcg32 rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, NormalHasSaneMoments) {
  Pcg32 rng(10);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32, NormalScaled) {
  Pcg32 rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Pcg32, SplitProducesIndependentStream) {
  Pcg32 parent(42);
  Pcg32 child = parent.split(1);
  Pcg32 child2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == child2()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

// --- RingBuffer -------------------------------------------------------------

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushAndReadBack) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 3);
  EXPECT_EQ(rb.at(1), 2);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, SnapshotOldestFirst) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 4; ++i) rb.push(i);
  const std::vector<int> snap = rb.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0], 2);
  EXPECT_EQ(snap[2], 4);
}

TEST(RingBuffer, AtOutOfRangeThrows) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_THROW((void)rb.at(1), std::out_of_range);
}

TEST(RingBuffer, FrontBackOnEmptyThrow) {
  RingBuffer<int> rb(2);
  EXPECT_THROW((void)rb.front(), std::out_of_range);
  EXPECT_THROW((void)rb.back(), std::out_of_range);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

// --- SimClock ---------------------------------------------------------------

TEST(SimClock, TicksAndSeconds) {
  SimClock clock;
  EXPECT_EQ(clock.ticks(), 0u);
  for (int i = 0; i < 1500; ++i) clock.tick();
  EXPECT_EQ(clock.ticks(), 1500u);
  EXPECT_DOUBLE_EQ(clock.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(clock.millis(), 1500.0);
  clock.reset();
  EXPECT_EQ(clock.ticks(), 0u);
}

// --- RobotState wire codes --------------------------------------------------

TEST(RobotStateCodes, RoundTrip) {
  for (auto s : {RobotState::kEStop, RobotState::kInit, RobotState::kPedalUp,
                 RobotState::kPedalDown}) {
    const auto back = state_from_wire_code(wire_code(s));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
  }
}

TEST(RobotStateCodes, PedalDownIs0x0F) {
  // The value the paper's offline analysis recovers as the trigger.
  EXPECT_EQ(wire_code(RobotState::kPedalDown), 0x0F);
}

TEST(RobotStateCodes, UnknownCodeRejected) {
  EXPECT_FALSE(state_from_wire_code(0x00).has_value());
  EXPECT_FALSE(state_from_wire_code(0x05).has_value());
  EXPECT_FALSE(state_from_wire_code(0xFF).has_value());
}

TEST(RobotStateCodes, NamesDistinct) {
  std::set<std::string_view> names;
  for (auto s : {RobotState::kEStop, RobotState::kInit, RobotState::kPedalUp,
                 RobotState::kPedalDown}) {
    names.insert(to_string(s));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace rg
