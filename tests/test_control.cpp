// Unit tests for the control module: PID, safety checks (the RAVEN
// baseline detector), state machine, and control-software edge behaviour.
#include <gtest/gtest.h>

#include "control/control_software.hpp"
#include "control/pid.hpp"
#include "control/safety.hpp"
#include "control/state_machine.hpp"

namespace rg {
namespace {

// --- PID ------------------------------------------------------------------------

TEST(Pid, ProportionalTerm) {
  PidController pid(PidGains{.kp = 2.0}, 0.001);
  EXPECT_DOUBLE_EQ(pid.update(0.5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.update(-0.5, 0.0), -1.0);
}

TEST(Pid, DerivativeOnMeasurementOpposesMotion) {
  PidController pid(PidGains{.kp = 0.0, .kd = 0.1}, 0.001);
  EXPECT_DOUBLE_EQ(pid.update(0.0, 10.0), -1.0);
}

TEST(Pid, IntegralAccumulates) {
  PidController pid(PidGains{.ki = 100.0}, 0.01);
  EXPECT_NEAR(pid.update(1.0, 0.0), 1.0, 1e-12);   // 100 * (1.0 * 0.01)
  EXPECT_NEAR(pid.update(1.0, 0.0), 2.0, 1e-12);
  pid.reset();
  EXPECT_NEAR(pid.update(1.0, 0.0), 1.0, 1e-12);
}

TEST(Pid, IntegralClampedAtLimit) {
  PidController pid(PidGains{.ki = 1.0, .integral_limit = 0.05}, 0.01);
  for (int i = 0; i < 100; ++i) (void)pid.update(1.0, 0.0);
  EXPECT_DOUBLE_EQ(pid.integral_state(), 0.05);
}

TEST(Pid, OutputSaturates) {
  PidController pid(PidGains{.kp = 10.0, .output_limit = 0.3}, 0.001);
  EXPECT_DOUBLE_EQ(pid.update(5.0, 0.0), 0.3);
  EXPECT_DOUBLE_EQ(pid.update(-5.0, 0.0), -0.3);
}

TEST(Pid, ConditionalAntiWindupStopsIntegrationWhenSaturated) {
  PidController pid(PidGains{.kp = 10.0, .ki = 1.0, .output_limit = 0.3}, 0.01);
  for (int i = 0; i < 50; ++i) (void)pid.update(5.0, 0.0);  // hard saturation
  // Integral must not have wound up while pushing further into saturation.
  EXPECT_LT(pid.integral_state(), 0.01);
}

TEST(Pid, ValidatesConstruction) {
  EXPECT_THROW(PidController(PidGains{}, 0.0), std::invalid_argument);
  EXPECT_THROW(PidController(PidGains{.output_limit = -1.0}, 0.001), std::invalid_argument);
}

// --- SafetyChecker -----------------------------------------------------------------

TEST(Safety, DacWithinLimitPasses) {
  const SafetyChecker checker;
  const std::array<std::int16_t, 3> ok{1000, -1000, 0};
  EXPECT_FALSE(checker.check_dac(ok).has_value());
}

TEST(Safety, DacOverLimitFlagged) {
  const SafetyChecker checker;  // default limit 26000
  const std::array<std::int16_t, 3> bad{0, 27000, 0};
  const auto violation = checker.check_dac(bad);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, SafetyViolation::Kind::kDacLimit);
  EXPECT_EQ(violation->channel, 1u);
}

TEST(Safety, DacNegativeOverLimitFlagged) {
  const SafetyChecker checker;
  const std::array<std::int16_t, 3> bad{-27000, 0, 0};
  EXPECT_TRUE(checker.check_dac(bad).has_value());
}

TEST(Safety, JointsInsideWorkspacePass) {
  const SafetyChecker checker;
  EXPECT_FALSE(checker.check_joints(JointLimits::raven_defaults().midpoint()).has_value());
}

TEST(Safety, JointsNearBoundaryFlagged) {
  const SafetyChecker checker;
  JointVector q = JointLimits::raven_defaults().midpoint();
  q[2] = JointLimits::raven_defaults().joint(2).max;  // inside margin band
  const auto violation = checker.check_joints(q);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, SafetyViolation::Kind::kWorkspace);
}

TEST(Safety, IncrementLimit) {
  const SafetyChecker checker;  // 1 mm per packet
  EXPECT_FALSE(checker.check_increment(Vec3{5e-4, 0.0, 0.0}).has_value());
  const auto violation = checker.check_increment(Vec3{2e-3, 0.0, 0.0});
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->kind, SafetyViolation::Kind::kIncrement);
}

TEST(Safety, DescribeMentionsKind) {
  const SafetyViolation v{SafetyViolation::Kind::kDacLimit, 2, 30000.0, 26000.0};
  EXPECT_NE(v.describe().find("DAC"), std::string::npos);
  EXPECT_NE(v.describe().find("2"), std::string::npos);
}

// --- ControlStateMachine --------------------------------------------------------------

TEST(StateMachine, FullOperationalWalk) {
  ControlStateMachine sm(10);
  EXPECT_EQ(sm.state(), RobotState::kEStop);
  sm.press_start();
  EXPECT_EQ(sm.state(), RobotState::kInit);
  for (int i = 0; i < 10; ++i) sm.tick();
  EXPECT_EQ(sm.state(), RobotState::kPedalUp);
  sm.set_pedal(true);
  EXPECT_EQ(sm.state(), RobotState::kPedalDown);
  sm.set_pedal(false);
  EXPECT_EQ(sm.state(), RobotState::kPedalUp);
}

TEST(StateMachine, EstopFromAnyState) {
  ControlStateMachine sm(5);
  sm.press_start();
  for (int i = 0; i < 5; ++i) sm.tick();
  sm.set_pedal(true);
  sm.trigger_estop();
  EXPECT_EQ(sm.state(), RobotState::kEStop);
  // Pedal does nothing in E-STOP.
  sm.set_pedal(true);
  EXPECT_EQ(sm.state(), RobotState::kEStop);
}

TEST(StateMachine, StartOnlyActsInEstop) {
  ControlStateMachine sm(5);
  sm.press_start();
  for (int i = 0; i < 5; ++i) sm.tick();
  EXPECT_EQ(sm.state(), RobotState::kPedalUp);
  sm.press_start();  // no-op outside E-STOP
  EXPECT_EQ(sm.state(), RobotState::kPedalUp);
}

TEST(StateMachine, PedalIgnoredDuringInit) {
  ControlStateMachine sm(10);
  sm.press_start();
  sm.set_pedal(true);
  EXPECT_EQ(sm.state(), RobotState::kInit);
}

TEST(StateMachine, HomingProgress) {
  ControlStateMachine sm(4);
  sm.press_start();
  EXPECT_DOUBLE_EQ(sm.homing_progress(), 0.0);
  sm.tick();
  sm.tick();
  EXPECT_DOUBLE_EQ(sm.homing_progress(), 0.5);
  sm.tick();
  sm.tick();
  EXPECT_DOUBLE_EQ(sm.homing_progress(), 1.0);
  EXPECT_EQ(sm.state(), RobotState::kPedalUp);
}

// --- ControlSoftware edge behaviour -----------------------------------------------------

FeedbackBytes rest_feedback(const ControlConfig& cfg) {
  // Feedback consistent with the arm parked at the workspace midpoint.
  const CableCoupling coupling(cfg.transmission);
  const MotorVector mpos = coupling.joint_to_motor(cfg.limits.midpoint());
  const MotorChannel ch(cfg.channel);
  FeedbackPacket pkt;
  // PLC echoes a live state (a persistent E-STOP echo while the software
  // drives would trip the desync cross-check, tested separately).
  pkt.state = RobotState::kInit;
  for (std::size_t i = 0; i < 3; ++i) pkt.encoders[i] = ch.counts_from_angle(mpos[i]);
  return encode_feedback(pkt);
}

TEST(ControlSoftware, StaysIdleInEstop) {
  ControlSoftware ctrl;
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  const CommandBytes cmd = ctrl.tick(std::nullopt, fb);
  const auto decoded = decode_command(cmd, true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, RobotState::kEStop);
  for (std::size_t ch = 0; ch < kNumBoardChannels; ++ch) {
    EXPECT_EQ(decoded.value().dac[ch], 0);
  }
}

TEST(ControlSoftware, WatchdogTogglesWhenHealthy) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  const auto a = decode_command(ctrl.tick(std::nullopt, fb), true);
  const auto b = decode_command(ctrl.tick(std::nullopt, fb), true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().watchdog_bit, b.value().watchdog_bit);
}

TEST(ControlSoftware, CorruptFeedbackIsHeld) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes good = rest_feedback(ctrl.config());
  (void)ctrl.tick(std::nullopt, good);
  FeedbackBytes bad = good;
  bad[5] ^= 0xFF;  // checksum now wrong
  (void)ctrl.tick(std::nullopt, bad);
  // Measured position unchanged (held), not the corrupted value.
  const MotorVector held = ctrl.debug().mpos_measured;
  const CableCoupling coupling(ctrl.config().transmission);
  const MotorVector expected = coupling.joint_to_motor(ctrl.config().limits.midpoint());
  EXPECT_NEAR(held[0], expected[0], 0.01);
}

TEST(ControlSoftware, BadItpPacketDropped) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  ItpBytes itp = encode_itp(ItpPacket{});
  itp[7] ^= 0x01;  // break the checksum
  (void)ctrl.tick(std::span<const std::uint8_t>{itp}, fb);
  EXPECT_TRUE(ctrl.debug().itp_dropped);
}

TEST(ControlSoftware, OversizedIncrementLatchesFault) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  // Complete homing.
  for (std::uint32_t i = 0; i <= ctrl.config().homing_ticks; ++i) (void)ctrl.tick(std::nullopt, fb);
  EXPECT_EQ(ctrl.state(), RobotState::kPedalUp);
  // Pedal down.
  ItpPacket pedal;
  pedal.pedal_down = true;
  ItpBytes pb = encode_itp(pedal);
  (void)ctrl.tick(std::span<const std::uint8_t>{pb}, fb);
  EXPECT_EQ(ctrl.state(), RobotState::kPedalDown);
  // Malicious oversized increment (scenario A with a clumsy attacker).
  ItpPacket evil;
  evil.pedal_down = true;
  evil.pos_increment = Vec3{5e-3, 0.0, 0.0};
  ItpBytes eb = encode_itp(evil);
  (void)ctrl.tick(std::span<const std::uint8_t>{eb}, fb);
  EXPECT_TRUE(ctrl.safety_fault_latched());
  EXPECT_EQ(ctrl.state(), RobotState::kEStop);
  ASSERT_TRUE(ctrl.first_violation().has_value());
  EXPECT_EQ(ctrl.first_violation()->kind, SafetyViolation::Kind::kIncrement);
}

TEST(ControlSoftware, FaultFreezesWatchdogAndZerosDac) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  for (std::uint32_t i = 0; i <= ctrl.config().homing_ticks; ++i) (void)ctrl.tick(std::nullopt, fb);
  ItpPacket pedal;
  pedal.pedal_down = true;
  ItpBytes pb = encode_itp(pedal);
  (void)ctrl.tick(std::span<const std::uint8_t>{pb}, fb);
  ItpPacket evil;
  evil.pedal_down = true;
  evil.pos_increment = Vec3{5e-3, 0.0, 0.0};
  ItpBytes eb = encode_itp(evil);
  const auto f1 = decode_command(ctrl.tick(std::span<const std::uint8_t>{eb}, fb), true);
  const auto f2 = decode_command(ctrl.tick(std::nullopt, fb), true);
  ASSERT_TRUE(f1.ok() && f2.ok());
  EXPECT_EQ(f1.value().watchdog_bit, f2.value().watchdog_bit);  // frozen
  EXPECT_EQ(f1.value().dac[0], 0);
  EXPECT_EQ(f2.value().dac[1], 0);
}

TEST(ControlSoftware, PlcDesyncLatchesFault) {
  // A read-path attacker spoofing the PLC state echo to E-STOP while the
  // software drives (Table I "homing failure"): the cross-check must halt
  // the software after plc_desync_limit consecutive bad reports.
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes good = rest_feedback(ctrl.config());
  (void)ctrl.tick(std::nullopt, good);

  FeedbackPacket spoofed = decode_feedback(good, false).value();
  spoofed.state = RobotState::kEStop;
  const FeedbackBytes bad = encode_feedback(spoofed);
  const std::uint32_t limit = ctrl.config().plc_desync_limit;
  for (std::uint32_t i = 0; i + 1 < limit; ++i) (void)ctrl.tick(std::nullopt, bad);
  EXPECT_FALSE(ctrl.safety_fault_latched());
  (void)ctrl.tick(std::nullopt, bad);
  EXPECT_TRUE(ctrl.safety_fault_latched());
}

TEST(ControlSoftware, TransientEstopEchoTolerated) {
  // Short E-STOP echoes (e.g. at startup) must not fault the software.
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes good = rest_feedback(ctrl.config());
  FeedbackPacket estop_pkt = decode_feedback(good, false).value();
  estop_pkt.state = RobotState::kEStop;
  const FeedbackBytes bad = encode_feedback(estop_pkt);
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 10; ++i) (void)ctrl.tick(std::nullopt, bad);
    for (int i = 0; i < 3; ++i) (void)ctrl.tick(std::nullopt, good);  // echo recovers
  }
  EXPECT_FALSE(ctrl.safety_fault_latched());
}

TEST(ControlSoftware, PressStartClearsFault) {
  ControlSoftware ctrl;
  ctrl.press_start();
  const FeedbackBytes fb = rest_feedback(ctrl.config());
  for (std::uint32_t i = 0; i <= ctrl.config().homing_ticks; ++i) (void)ctrl.tick(std::nullopt, fb);
  ItpPacket pedal;
  pedal.pedal_down = true;
  ItpBytes pb = encode_itp(pedal);
  (void)ctrl.tick(std::span<const std::uint8_t>{pb}, fb);
  ItpPacket evil;
  evil.pedal_down = true;
  evil.pos_increment = Vec3{5e-3, 0.0, 0.0};
  ItpBytes eb = encode_itp(evil);
  (void)ctrl.tick(std::span<const std::uint8_t>{eb}, fb);
  ASSERT_TRUE(ctrl.safety_fault_latched());
  ctrl.press_start();
  EXPECT_FALSE(ctrl.safety_fault_latched());
  EXPECT_EQ(ctrl.state(), RobotState::kInit);
}

}  // namespace
}  // namespace rg
