// Unit tests for the core contribution: dynamic-model estimator,
// threshold learning, fused anomaly detector, mitigator, pipeline.
#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "core/estimator.hpp"
#include "core/mitigator.hpp"
#include "core/pipeline.hpp"
#include "core/thresholds.hpp"

namespace rg {
namespace {

MotorVector rest_motor_angles() {
  const RavenDynamicsModel model;
  return model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15});
}

// --- DynamicModelEstimator -----------------------------------------------------------

TEST(Estimator, InvalidUntilFeedback) {
  DynamicModelEstimator est;
  const Prediction pred = est.predict({1000, 0, 0});
  EXPECT_FALSE(pred.valid);
}

TEST(Estimator, FirstFeedbackHardSyncs) {
  DynamicModelEstimator est;
  const MotorVector m = rest_motor_angles();
  est.observe_feedback(m);
  const Prediction pred = est.predict({0, 0, 0});
  ASSERT_TRUE(pred.valid);
  EXPECT_NEAR(pred.mpos_now[0], m[0], 1e-9);
  EXPECT_NEAR(pred.mvel_now.norm(), 0.0, 1e-9);
}

TEST(Estimator, PredictIsTentative) {
  DynamicModelEstimator est;
  est.observe_feedback(rest_motor_angles());
  const Prediction a = est.predict({20000, 0, 0});
  const Prediction b = est.predict({20000, 0, 0});
  EXPECT_EQ(a.mpos_next[0], b.mpos_next[0]);  // no state advanced
}

TEST(Estimator, CommitAdvancesParallelModel) {
  DynamicModelEstimator est;
  est.observe_feedback(rest_motor_angles());
  const Prediction before = est.predict({0, 0, 0});
  est.commit({20000, 0, 0});
  const Prediction after = est.predict({0, 0, 0});
  EXPECT_GT(std::abs(after.mvel_now[0]), std::abs(before.mvel_now[0]));
}

TEST(Estimator, LargeDacPredictsLargeAcceleration) {
  DynamicModelEstimator est;
  est.observe_feedback(rest_motor_angles());
  const Prediction quiet = est.predict({0, 0, 0});
  const Prediction violent = est.predict({0, 25000, 0});
  EXPECT_GT(violent.motor_instant_acc[1], 50.0 * (quiet.motor_instant_acc[1] + 1.0));
}

TEST(Estimator, ObserverPullsTowardEncoders) {
  DynamicModelEstimator est;
  const MotorVector m = rest_motor_angles();
  est.observe_feedback(m);
  // Encoders report the motor moved; the model should follow gradually.
  MotorVector moved = m;
  moved[0] += 0.1;
  for (int i = 0; i < 50; ++i) {
    est.observe_feedback(moved);
    est.commit({0, 0, 0});
  }
  const Prediction pred = est.predict({0, 0, 0});
  EXPECT_NEAR(pred.mpos_now[0], moved[0], 0.02);
}

TEST(Estimator, DisengageForcesResync) {
  DynamicModelEstimator est;
  est.observe_feedback(rest_motor_angles());
  est.commit({25000, 0, 0});  // model now has velocity
  est.mark_disengaged();
  est.observe_feedback(rest_motor_angles());  // hard sync: velocity cleared
  const Prediction pred = est.predict({0, 0, 0});
  EXPECT_NEAR(pred.mvel_now.norm(), 0.0, 1e-9);
}

TEST(Estimator, SolverAndStepConfigurable) {
  EstimatorConfig cfg;
  cfg.solver = SolverKind::kRk4;
  cfg.step = 5e-4;
  DynamicModelEstimator est(cfg);
  est.observe_feedback(rest_motor_angles());
  EXPECT_TRUE(est.predict({0, 0, 0}).valid);
  EXPECT_THROW(DynamicModelEstimator(EstimatorConfig{.step = 0.0}), std::invalid_argument);
}

TEST(Estimator, ValidatesObserverGains) {
  EstimatorConfig cfg;
  cfg.observer_position_gain = 2.0;
  EXPECT_THROW(DynamicModelEstimator{cfg}, std::invalid_argument);
  cfg = EstimatorConfig{};
  cfg.observer_velocity_gain = -1.0;
  EXPECT_THROW(DynamicModelEstimator{cfg}, std::invalid_argument);
}

// --- ThresholdLearner -----------------------------------------------------------------

Prediction fake_prediction(double scale) {
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3::filled(scale);
  p.motor_instant_acc = Vec3::filled(10.0 * scale);
  p.joint_instant_vel = Vec3::filled(0.1 * scale);
  return p;
}

TEST(ThresholdLearner, LearnsPerRunMaxima) {
  ThresholdLearner learner;
  for (int run = 1; run <= 10; ++run) {
    for (int i = 0; i < 5; ++i) learner.observe(fake_prediction(run * (i + 1)));
    learner.end_run();
  }
  EXPECT_EQ(learner.runs(), 10u);
  // Run r's max is 5r; the 100th percentile over runs is 50.
  const DetectionThresholds th = learner.learn(100.0).value();
  EXPECT_NEAR(th.motor_vel[0], 50.0, 1e-9);
  EXPECT_NEAR(th.motor_acc[0], 500.0, 1e-9);
  EXPECT_NEAR(th.joint_vel[0], 5.0, 1e-9);
}

TEST(ThresholdLearner, MarginScales) {
  ThresholdLearner learner;
  learner.observe(fake_prediction(1.0));
  learner.end_run();
  const DetectionThresholds th = learner.learn(100.0, 2.0).value();
  EXPECT_NEAR(th.motor_vel[0], 2.0, 1e-12);
}

TEST(ThresholdLearner, InvalidPredictionsIgnored) {
  ThresholdLearner learner;
  Prediction invalid;
  learner.observe(invalid);
  learner.end_run();  // nothing recorded -> no run committed
  EXPECT_EQ(learner.runs(), 0u);
  const Result<DetectionThresholds> learned = learner.learn();
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.error().code(), ErrorCode::kNotReady);
}

TEST(ThresholdLearner, LearnValidatesArguments) {
  ThresholdLearner learner;
  learner.observe(fake_prediction(1.0));
  learner.end_run();
  EXPECT_EQ(learner.learn(-1.0).error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(learner.learn(101.0).error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(learner.learn(99.0, 0.0).error().code(), ErrorCode::kInvalidArgument);
}

TEST(ThresholdLearner, Reset) {
  ThresholdLearner learner;
  learner.observe(fake_prediction(1.0));
  learner.end_run();
  learner.reset();
  EXPECT_EQ(learner.runs(), 0u);
}

// --- AnomalyDetector -------------------------------------------------------------------

DetectorConfig small_thresholds(FusionPolicy fusion) {
  DetectorConfig cfg;
  cfg.thresholds.motor_vel = Vec3::filled(1.0);
  cfg.thresholds.motor_acc = Vec3::filled(10.0);
  cfg.thresholds.joint_vel = Vec3::filled(0.1);
  cfg.fusion = fusion;
  cfg.ee_jump_limit = 0.0;  // isolate the fusion logic
  return cfg;
}

Prediction violation(bool vel, bool acc, bool joint) {
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3::filled(vel ? 2.0 : 0.1);
  p.motor_instant_acc = Vec3::filled(acc ? 20.0 : 1.0);
  p.joint_instant_vel = Vec3::filled(joint ? 0.2 : 0.01);
  return p;
}

TEST(Detector, AllThreeFusionRequiresAllFlags) {
  const AnomalyDetector det(small_thresholds(FusionPolicy::kAllThree));
  EXPECT_FALSE(det.evaluate(violation(true, true, false)).alarm);
  EXPECT_FALSE(det.evaluate(violation(true, false, true)).alarm);
  EXPECT_FALSE(det.evaluate(violation(false, true, true)).alarm);
  EXPECT_TRUE(det.evaluate(violation(true, true, true)).alarm);
}

TEST(Detector, TwoOfThreeFusion) {
  const AnomalyDetector det(small_thresholds(FusionPolicy::kTwoOfThree));
  EXPECT_TRUE(det.evaluate(violation(true, true, false)).alarm);
  EXPECT_FALSE(det.evaluate(violation(true, false, false)).alarm);
}

TEST(Detector, AnyVariableFusion) {
  const AnomalyDetector det(small_thresholds(FusionPolicy::kAnyVariable));
  EXPECT_TRUE(det.evaluate(violation(false, false, true)).alarm);
  EXPECT_FALSE(det.evaluate(violation(false, false, false)).alarm);
}

TEST(Detector, FlagsReported) {
  const AnomalyDetector det(small_thresholds(FusionPolicy::kAllThree));
  const Verdict v = det.evaluate(violation(true, false, true));
  EXPECT_TRUE(v.motor_vel_flag);
  EXPECT_FALSE(v.motor_acc_flag);
  EXPECT_TRUE(v.joint_vel_flag);
}

TEST(Detector, EeJumpOverridesFusion) {
  DetectorConfig cfg = small_thresholds(FusionPolicy::kAllThree);
  cfg.ee_jump_limit = 1e-3;
  const AnomalyDetector det(cfg);
  Prediction p = violation(false, false, false);
  p.ee_displacement = 2e-3;
  const Verdict v = det.evaluate(p);
  EXPECT_TRUE(v.alarm);
  EXPECT_TRUE(v.ee_jump_flag);
}

TEST(Detector, InvalidPredictionNeverAlarms) {
  const AnomalyDetector det(small_thresholds(FusionPolicy::kAnyVariable));
  Prediction p = violation(true, true, true);
  p.valid = false;
  EXPECT_FALSE(det.evaluate(p).alarm);
}

TEST(Detector, WorstAxisIdentified) {
  DetectorConfig cfg = small_thresholds(FusionPolicy::kAnyVariable);
  const AnomalyDetector det(cfg);
  Prediction p;
  p.valid = true;
  p.motor_instant_vel = Vec3{0.1, 5.0, 0.1};  // axis 1 dominates
  const Verdict v = det.evaluate(p);
  EXPECT_EQ(v.worst_axis, 1u);
}

TEST(Detector, FusionPolicyNames) {
  EXPECT_EQ(to_string(FusionPolicy::kAllThree), "all-3");
  EXPECT_EQ(to_string(FusionPolicy::kTwoOfThree), "2-of-3");
  EXPECT_EQ(to_string(FusionPolicy::kAnyVariable), "any-1");
}

// --- Mitigator -------------------------------------------------------------------------

CommandPacket offending_packet() {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac = {30000, -30000, 30000, 0, 0, 0, 0, 0};
  return pkt;
}

TEST(Mitigator, EStopZerosDacs) {
  const Mitigator mit(MitigationStrategy::kEStop);
  const CommandPacket out = mit.mitigate(offending_packet());
  EXPECT_EQ(out.state, RobotState::kEStop);
  for (std::size_t i = 0; i < kNumBoardChannels; ++i) EXPECT_EQ(out.dac[i], 0);
}

TEST(Mitigator, HoldLastSafeReplaysDacs) {
  Mitigator mit(MitigationStrategy::kHoldLastSafe);
  CommandPacket safe;
  safe.state = RobotState::kPedalDown;
  safe.dac[0] = 1234;
  mit.record_safe(safe);
  const CommandPacket out = mit.mitigate(offending_packet());
  EXPECT_EQ(out.dac[0], 1234);
  EXPECT_EQ(out.state, RobotState::kPedalDown);  // robot stays engaged
}

TEST(Mitigator, HoldWithoutHistoryZeros) {
  const Mitigator mit(MitigationStrategy::kHoldLastSafe);
  const CommandPacket out = mit.mitigate(offending_packet());
  EXPECT_EQ(out.dac[0], 0);
}

// --- DetectionPipeline -------------------------------------------------------------------

PipelineConfig lenient_pipeline(bool mitigation) {
  PipelineConfig cfg;
  cfg.detector.thresholds.motor_vel = Vec3::filled(1e9);
  cfg.detector.thresholds.motor_acc = Vec3::filled(1e9);
  cfg.detector.thresholds.joint_vel = Vec3::filled(1e9);
  cfg.detector.ee_jump_limit = 0.0;
  cfg.mitigation_enabled = mitigation;
  return cfg;
}

PipelineConfig strict_pipeline(bool mitigation) {
  PipelineConfig cfg = lenient_pipeline(mitigation);
  cfg.detector.thresholds.motor_vel = Vec3::filled(1e-6);
  cfg.detector.thresholds.motor_acc = Vec3::filled(1e-6);
  cfg.detector.thresholds.joint_vel = Vec3::filled(1e-9);
  // Any-variable fusion: a single command from rest cannot move the
  // *joints* within one predicted step (the cable has no stretch yet),
  // so all-three fusion needs a few committed cycles — exercised by the
  // end-to-end tests; here we isolate the blocking path.
  cfg.detector.fusion = FusionPolicy::kAnyVariable;
  return cfg;
}

CommandBytes live_command(std::int16_t dac0) {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac[0] = dac0;
  return encode_command(pkt);
}

TEST(Pipeline, CleanCommandPassesThrough) {
  DetectionPipeline pipe(lenient_pipeline(true));
  pipe.observe_feedback(rest_motor_angles());
  const CommandBytes cmd = live_command(500);
  const auto out = pipe.process(cmd);
  EXPECT_FALSE(out.alarm);
  EXPECT_FALSE(out.blocked);
  EXPECT_EQ(out.bytes, cmd);
  EXPECT_EQ(pipe.alarms(), 0u);
}

TEST(Pipeline, StrictThresholdsBlockAndRewrite) {
  DetectionPipeline pipe(strict_pipeline(true));
  pipe.observe_feedback(rest_motor_angles());
  const auto out = pipe.process(live_command(25000));
  EXPECT_TRUE(out.alarm);
  EXPECT_TRUE(out.blocked);
  const auto rewritten = decode_command(out.bytes, true);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value().state, RobotState::kEStop);
  EXPECT_EQ(rewritten.value().dac[0], 0);
  EXPECT_EQ(pipe.alarms(), 1u);
  ASSERT_TRUE(pipe.first_alarm_tick().has_value());
}

TEST(Pipeline, ObserveOnlyDeliversDespiteAlarm) {
  DetectionPipeline pipe(strict_pipeline(false));
  pipe.observe_feedback(rest_motor_angles());
  const CommandBytes cmd = live_command(25000);
  const auto out = pipe.process(cmd);
  EXPECT_TRUE(out.alarm);
  EXPECT_FALSE(out.blocked);
  EXPECT_EQ(out.bytes, cmd);
}

TEST(Pipeline, FailsClosedOnGarbage) {
  DetectionPipeline pipe(lenient_pipeline(true));
  pipe.observe_feedback(rest_motor_angles());
  std::array<std::uint8_t, kCommandPacketSize> garbage{};
  garbage[0] = 0x09;  // invalid state code
  const auto out = pipe.process(garbage);
  EXPECT_TRUE(out.alarm);
  EXPECT_TRUE(out.blocked);
  const auto rewritten = decode_command(out.bytes, true);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten.value().state, RobotState::kEStop);
}

TEST(Pipeline, DisengagedPausesScreening) {
  DetectionPipeline pipe(strict_pipeline(true));
  pipe.observe_feedback(rest_motor_angles());
  pipe.set_engaged(false);
  const CommandBytes cmd = live_command(25000);
  const auto out = pipe.process(cmd);
  EXPECT_FALSE(out.alarm);
  EXPECT_EQ(out.bytes, cmd);
}

TEST(Pipeline, ResetClearsCounters) {
  DetectionPipeline pipe(strict_pipeline(false));
  pipe.observe_feedback(rest_motor_angles());
  (void)pipe.process(live_command(25000));
  EXPECT_GT(pipe.alarms(), 0u);
  pipe.reset();
  EXPECT_EQ(pipe.alarms(), 0u);
  EXPECT_EQ(pipe.commands_screened(), 0u);
  EXPECT_FALSE(pipe.first_alarm_tick().has_value());
}

}  // namespace
}  // namespace rg
