// Unit tests for the defense module: SipHash MAC and the bump-in-the-wire
// command sealing/verification retrofit.
#include <gtest/gtest.h>

#include "defense/bitw.hpp"
#include "defense/mac.hpp"

namespace rg {
namespace {

// --- SipHash-2-4 -----------------------------------------------------------------

TEST(SipHash, ReferenceVector) {
  // Reference test vector (SipHash-2-4, 64-bit output): key =
  // 000102...0f, message = 00 01 02 ... 3e (63 bytes).
  MacKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0f0e0d0c0b0a0908ULL;
  std::vector<std::uint8_t> msg(63);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(siphash24(key, msg), 0x958a324ceb064572ULL);
}

TEST(SipHash, EmptyMessageReferenceVector) {
  MacKey key;
  key.k0 = 0x0706050403020100ULL;
  key.k1 = 0x0f0e0d0c0b0a0908ULL;
  EXPECT_EQ(siphash24(key, {}), 0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, KeySensitivity) {
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  EXPECT_NE(siphash24(MacKey::from_seed(1), msg), siphash24(MacKey::from_seed(2), msg));
}

TEST(SipHash, MessageSensitivity) {
  const MacKey key = MacKey::from_seed(9);
  std::vector<std::uint8_t> a{1, 2, 3};
  std::vector<std::uint8_t> b{1, 2, 4};
  EXPECT_NE(siphash24(key, a), siphash24(key, b));
}

TEST(SipHash, TagBytesRoundTrip) {
  const std::uint64_t tag = 0x0123456789abcdefULL;
  EXPECT_EQ(tag_from_bytes(tag_bytes(tag)), tag);
}

TEST(SipHash, TagsEqual) {
  EXPECT_TRUE(tags_equal(42, 42));
  EXPECT_FALSE(tags_equal(42, 43));
  EXPECT_FALSE(tags_equal(0, 1ULL << 63));
}

// --- BITW sealing -----------------------------------------------------------------

CommandBytes sample_command() {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac = {100, -200, 300, 0, 0, 0, 0, 0};
  return encode_command(pkt);
}

TEST(Bitw, SealVerifyRoundTrip) {
  const MacKey key = MacKey::from_seed(5);
  CommandSealer sealer(key);
  CommandVerifier verifier(key);
  const CommandBytes pkt = sample_command();
  const SealedCommandBytes frame = sealer.seal(pkt);
  const auto out = verifier.verify(frame);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, pkt);
  EXPECT_EQ(verifier.accepted(), 1u);
}

TEST(Bitw, TamperedPayloadRejected) {
  const MacKey key = MacKey::from_seed(5);
  CommandSealer sealer(key);
  CommandVerifier verifier(key);
  SealedCommandBytes frame = sealer.seal(sample_command());
  frame[3] ^= 0x40;  // flip a DAC bit — the scenario-B corruption
  EXPECT_FALSE(verifier.verify(frame).has_value());
  EXPECT_EQ(verifier.rejected(), 1u);
}

TEST(Bitw, TamperedSequenceRejected) {
  const MacKey key = MacKey::from_seed(5);
  CommandSealer sealer(key);
  CommandVerifier verifier(key);
  SealedCommandBytes frame = sealer.seal(sample_command());
  frame[kCommandPacketSize] ^= 0x01;  // sequence is under the MAC
  EXPECT_FALSE(verifier.verify(frame).has_value());
}

TEST(Bitw, ReplayRejected) {
  const MacKey key = MacKey::from_seed(5);
  CommandSealer sealer(key);
  CommandVerifier verifier(key);
  const SealedCommandBytes frame = sealer.seal(sample_command());
  ASSERT_TRUE(verifier.verify(frame).has_value());
  EXPECT_FALSE(verifier.verify(frame).has_value());  // replayed
}

TEST(Bitw, WrongKeyRejected) {
  CommandSealer sealer(MacKey::from_seed(5));
  CommandVerifier verifier(MacKey::from_seed(6));
  EXPECT_FALSE(verifier.verify(sealer.seal(sample_command())).has_value());
}

TEST(Bitw, WrongSizeRejected) {
  CommandVerifier verifier(MacKey::from_seed(5));
  std::vector<std::uint8_t> tiny(10, 0);
  EXPECT_FALSE(verifier.verify(tiny).has_value());
}

TEST(Bitw, SequenceAdvances) {
  CommandSealer sealer(MacKey::from_seed(5));
  CommandVerifier verifier(MacKey::from_seed(5));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(verifier.verify(sealer.seal(sample_command())).has_value());
  }
  EXPECT_EQ(verifier.accepted(), 5u);
}

TEST(Bitw, InProcessAttackerDefeatsTheSeal) {
  // THE point of the comparison (paper Sec. III.D): the sealing key lives
  // in the control process, so an LD_PRELOAD wrapper can corrupt the
  // packet and re-seal it — BITW integrity does not close the TOCTOU gap.
  const MacKey key = MacKey::from_seed(5);
  CommandSealer sealer(key);
  CommandVerifier verifier(key);

  const SealedCommandBytes honest = sealer.seal(sample_command());

  CommandPacket tampered_pkt = decode_command(sample_command(), false).value();
  tampered_pkt.dac[1] = 30000;  // malicious torque
  const SealedCommandBytes resealed =
      reseal_with_stolen_key(key, honest, encode_command(tampered_pkt));

  const auto out = verifier.verify(resealed);
  ASSERT_TRUE(out.has_value());  // the verifier is satisfied...
  const auto decoded = decode_command(*out, false);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().dac[1], 30000);  // ...and the malice went through
}

}  // namespace
}  // namespace rg
