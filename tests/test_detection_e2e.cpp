// End-to-end tests of the paper's full story on the co-simulation:
//   1. the attack kill chain (eavesdrop -> analyze -> trigger) works
//      against the simulated robot exactly as in Sec. III;
//   2. scenario B injections cause physical impact on the stock robot;
//   3. the dynamic-model pipeline detects them preemptively and
//      mitigation prevents the impact (Sec. IV).
//
// Threshold learning is shared across tests via a suite-level fixture
// (it is the expensive step).
#include <gtest/gtest.h>

#include <sstream>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {
namespace {

SessionParams base_session(std::uint64_t seed) {
  SessionParams p;
  p.seed = seed;
  p.duration_sec = 5.0;
  return p;
}

class DetectionE2E : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    thresholds_ = new DetectionThresholds(learn_thresholds(base_session(42), 25).value());
  }
  static void TearDownTestSuite() {
    delete thresholds_;
    thresholds_ = nullptr;
  }
  static const DetectionThresholds& thresholds() { return *thresholds_; }

 private:
  static DetectionThresholds* thresholds_;
};

DetectionThresholds* DetectionE2E::thresholds_ = nullptr;

// --- The attack kill chain -----------------------------------------------------------

TEST_F(DetectionE2E, KillChainEavesdropAnalyzeTrigger) {
  // Phase 1 (attack preparation): eavesdrop the USB writes of one run.
  auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
  {
    SimConfig cfg = make_session(base_session(7), std::nullopt, MitigationMode::kObserveOnly);
    // Pedal schedule with a lift so all four states appear clearly.
    cfg.pedal = PedalSchedule{{{1.2, 2.5}, {3.0, 9.0}}};
    SurgicalSim sim(std::move(cfg));
    sim.write_chain().add(logger);
    sim.run(5.0);
  }
  ASSERT_GT(logger->packets_captured(), 4000u);

  // Phase 2 (offline analysis): recover the state byte and trigger value
  // with no knowledge of the packet format.
  PacketAnalyzer analyzer(logger->capture());
  const auto inference = analyzer.infer_state();
  ASSERT_TRUE(inference.ok()) << inference.error().to_string();
  EXPECT_EQ(inference.value().state_byte_index, 0u);
  EXPECT_EQ(inference.value().watchdog_mask, 0x10);
  EXPECT_EQ(inference.value().pedal_down_code, 0x0F);

  // Phase 3 (deployment): a wrapper armed with the recovered trigger
  // corrupts DACs only while the robot is engaged.
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 22000;
  spec.duration_packets = 64;
  spec.delay_packets = 300;
  auto injector = build_torque_injection(spec, inference.value().state_byte_index,
                                         inference.value().watchdog_mask,
                                         inference.value().pedal_down_code);
  SimConfig cfg = make_session(base_session(8), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(injector);
  sim.run(5.0);

  EXPECT_GT(injector->injections(), 0u);
  EXPECT_TRUE(sim.outcome().adverse_impact());
  // The injection fired only after Pedal Down (never during homing).
  ASSERT_TRUE(injector->first_injection_tick().has_value());
  EXPECT_GT(*injector->first_injection_tick(), 1200u);
}

// --- Impact on the stock robot ---------------------------------------------------------

TEST_F(DetectionE2E, ScenarioBImpactsStockRobot) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 24000;
  spec.duration_packets = 128;
  spec.delay_packets = 500;
  const AttackRunResult r = run_attack_session(base_session(9), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_GT(r.injections, 0u);
  EXPECT_TRUE(r.impact());
  EXPECT_GT(r.outcome.max_ee_jump_window, 1.0e-3);
}

TEST_F(DetectionE2E, SmallShortInjectionIsAbsorbedByPid) {
  // The paper: small values / short activations have no physical impact —
  // the PID corrects them.
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 2000;
  spec.duration_packets = 4;
  spec.delay_packets = 500;
  const AttackRunResult r = run_attack_session(base_session(10), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_GT(r.injections, 0u);
  EXPECT_FALSE(r.impact());
}

// --- Detection -------------------------------------------------------------------------

TEST_F(DetectionE2E, DynamicModelDetectsScenarioBPreemptively) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 24000;
  spec.duration_packets = 128;
  spec.delay_packets = 500;
  const AttackRunResult r =
      run_attack_session(base_session(11), spec, thresholds(), MitigationMode::kObserveOnly);
  ASSERT_TRUE(r.impact());
  ASSERT_TRUE(r.outcome.detector_alarmed());
  EXPECT_TRUE(r.outcome.detected_preemptively());
}

TEST_F(DetectionE2E, DynamicModelDetectsWhatRavenMisses) {
  // The 84-cases effect: a moderate injection that jumps the arm without
  // ever tripping RAVEN's DAC threshold.
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 16000;
  spec.duration_packets = 8;
  spec.delay_packets = 500;
  const AttackRunResult r =
      run_attack_session(base_session(12), spec, thresholds(), MitigationMode::kObserveOnly);
  EXPECT_TRUE(r.impact());
  EXPECT_FALSE(r.outcome.raven_detected());
  EXPECT_TRUE(r.outcome.detector_alarmed());
}

TEST_F(DetectionE2E, CleanRunRaisesNoAlarms) {
  AttackSpec none;
  const AttackRunResult r =
      run_attack_session(base_session(13), none, thresholds(), MitigationMode::kArmed);
  EXPECT_FALSE(r.outcome.detector_alarmed());
  EXPECT_FALSE(r.outcome.raven_detected());
  EXPECT_FALSE(r.impact());
}

TEST_F(DetectionE2E, MitigationPreventsTheImpact) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 24000;
  spec.duration_packets = 128;
  spec.delay_packets = 500;

  const AttackRunResult unprotected =
      run_attack_session(base_session(14), spec, thresholds(), MitigationMode::kObserveOnly);
  const AttackRunResult protected_run =
      run_attack_session(base_session(14), spec, thresholds(), MitigationMode::kArmed);

  ASSERT_TRUE(unprotected.impact());
  ASSERT_TRUE(protected_run.outcome.detector_alarmed());
  // Mitigation fires preemptively and materially reduces the jump.  (It
  // cannot always erase it: the motors carry momentum by the time even a
  // preemptive alarm can fire, and the fail-safe brakes need tens of
  // milliseconds to bite — the paper likewise reports probabilistic, not
  // guaranteed, mitigation.)
  EXPECT_TRUE(protected_run.outcome.detected_preemptively());
  EXPECT_LT(protected_run.outcome.max_ee_jump_window,
            0.8 * unprotected.outcome.max_ee_jump_window);
  EXPECT_FALSE(protected_run.outcome.cable_snapped);
}

TEST_F(DetectionE2E, HoldLastSafeIsWeakerThanEstopMitigation) {
  // The paper lists two mitigations: replace the malicious command with a
  // previously safe one, or stop execution via E-STOP.  This test records
  // why E-STOP is the deployed default here: once packets have leaked
  // before the fused alarm forms, hold-last-safe also swallows the PID's
  // own *recovery* commands (they look anomalous too), so the arm drifts
  // on its momentum — and the software's stock checks usually end the
  // session anyway.
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 18000;
  spec.duration_packets = 64;
  spec.delay_packets = 500;

  SimConfig hold_cfg = make_session(base_session(19), thresholds(), MitigationMode::kArmed);
  hold_cfg.detection->mitigation = MitigationStrategy::kHoldLastSafe;
  SurgicalSim hold_sim(std::move(hold_cfg));
  hold_sim.install(build_attack(spec));
  hold_sim.run(5.0);

  SimConfig estop_cfg = make_session(base_session(19), thresholds(), MitigationMode::kArmed);
  SurgicalSim estop_sim(std::move(estop_cfg));
  estop_sim.install(build_attack(spec));
  estop_sim.run(5.0);

  EXPECT_TRUE(hold_sim.outcome().detector_alarmed());
  EXPECT_TRUE(estop_sim.outcome().detector_alarmed());
  // E-STOP mitigation contains the jump at least as well as hold.
  EXPECT_LE(estop_sim.outcome().max_ee_jump_window,
            hold_sim.outcome().max_ee_jump_window + 1e-6);
  EXPECT_FALSE(hold_sim.outcome().cable_snapped);
}

TEST_F(DetectionE2E, ScenarioADetectedPreemptively) {
  AttackSpec spec;
  spec.variant = AttackVariant::kUserInputInjection;
  spec.magnitude = 1.5e-4;
  spec.duration_packets = 64;
  spec.delay_packets = 300;
  const AttackRunResult r =
      run_attack_session(base_session(15), spec, thresholds(), MitigationMode::kObserveOnly);
  EXPECT_TRUE(r.impact());
  EXPECT_TRUE(r.outcome.detector_alarmed());
}

// --- Other Table-I variants on the harness ----------------------------------------------

TEST_F(DetectionE2E, ConsoleDropFreezesRobotWithoutImpact) {
  AttackSpec spec;
  spec.variant = AttackVariant::kConsoleDrop;
  spec.duration_packets = 0;  // drop everything once engaged
  spec.delay_packets = 0;
  const AttackRunResult r = run_attack_session(base_session(16), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_GT(r.injections, 0u);
  EXPECT_FALSE(r.impact());  // robot just holds still
}

TEST_F(DetectionE2E, MathDriftCausesUnwantedHalt) {
  AttackSpec spec;
  spec.variant = AttackVariant::kMathDrift;
  spec.magnitude = 5e-7;  // per-call drift accumulating through IK
  SessionParams p = base_session(17);
  p.duration_sec = 8.0;
  const AttackRunResult r = run_attack_session(p, spec, std::nullopt, MitigationMode::kObserveOnly);
  // IK-fail / workspace violation path: the robot ends in a halt state.
  EXPECT_TRUE(r.outcome.raven_detected());
  reset_math_drift();
}

TEST_F(DetectionE2E, TraceRecorderCapturesRun) {
  SimConfig cfg = make_session(base_session(18), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  sim.set_trace(&trace);
  sim.run(0.5);
  EXPECT_EQ(trace.size(), 500u);
  std::ostringstream os;
  trace.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("tick,ee_x"), std::string::npos);
  // Header + one line per tick.
  EXPECT_EQ(static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n')), 501u);
}

}  // namespace
}  // namespace rg
