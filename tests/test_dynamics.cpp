// Unit + property tests for the dynamics module: motor model, link
// dynamics (energy consistency, gravity statics), combined model.
#include <gtest/gtest.h>

#include <cmath>

#include "dynamics/link_dynamics.hpp"
#include "dynamics/motor.hpp"
#include "dynamics/raven_model.hpp"

namespace rg {
namespace {

// --- Motor model --------------------------------------------------------------

TEST(Motor, TorqueProportionalToCurrent) {
  const MotorParams p = MotorParams::re40();
  EXPECT_DOUBLE_EQ(motor_torque(p, 1.0), p.torque_constant);
  EXPECT_DOUBLE_EQ(motor_torque(p, -2.0), -2.0 * p.torque_constant);
}

TEST(Motor, CurrentClampedAtDriveLimit) {
  const MotorParams p = MotorParams::re40();
  EXPECT_DOUBLE_EQ(motor_torque(p, 100.0), p.torque_constant * p.max_current);
  EXPECT_DOUBLE_EQ(motor_torque(p, -100.0), -p.torque_constant * p.max_current);
}

TEST(Motor, FrictionOpposesMotion) {
  const MotorParams p = MotorParams::re40();
  EXPECT_GT(motor_friction(p, 10.0), 0.0);
  EXPECT_LT(motor_friction(p, -10.0), 0.0);
  EXPECT_DOUBLE_EQ(motor_friction(p, 0.0), 0.0);
}

TEST(Motor, FrictionSmoothNearZero) {
  const MotorParams p = MotorParams::re40();
  // tanh smoothing: friction at tiny speed is far below the Coulomb level.
  EXPECT_LT(motor_friction(p, 1e-4), 0.1 * p.coulomb_friction);
}

TEST(Motor, CatalogueValuesDiffer) {
  const MotorParams re40 = MotorParams::re40();
  const MotorParams re30 = MotorParams::re30();
  EXPECT_GT(re40.rotor_inertia, re30.rotor_inertia);
  EXPECT_GT(re40.max_current, re30.max_current);
}

// --- Link dynamics -------------------------------------------------------------

TEST(LinkDynamics, MassDiagonalPositive) {
  const LinkDynamics link;
  const Vec3 mass = link.mass_diagonal(JointVector{0.3, 1.2, 0.2});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_GT(mass[i], 0.0);
}

TEST(LinkDynamics, MassGrowsWithInsertion) {
  const LinkDynamics link;
  const Vec3 shallow = link.mass_diagonal(JointVector{0.0, 1.2, 0.05});
  const Vec3 deep = link.mass_diagonal(JointVector{0.0, 1.2, 0.30});
  EXPECT_GT(deep[0], shallow[0]);
  EXPECT_GT(deep[1], shallow[1]);
  EXPECT_DOUBLE_EQ(deep[2], shallow[2]);  // prismatic mass is constant
}

TEST(LinkDynamics, ForwardInverseRoundTrip) {
  const LinkDynamics link;
  const JointVector q{0.4, 1.1, 0.18};
  const JointVector qdot{0.5, -0.3, 0.04};
  const Vec3 qddot{1.0, -2.0, 0.5};
  const Vec3 tau = link.inverse_dynamics(q, qdot, qddot);
  const Vec3 recovered = link.acceleration(q, qdot, tau);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(recovered[i], qddot[i], 1e-9);
}

TEST(LinkDynamics, GravityStaticsAtRest) {
  // At rest the required holding torque is exactly the gravity vector:
  // tau_hold = G(q); for q2 < pi/2 the elbow must hold the tool up.
  LinkParams params;
  params.coulomb_shoulder = params.coulomb_elbow = 0.0;
  params.coulomb_insertion = 0.0;
  const LinkDynamics link(params);
  const JointVector q{0.0, 0.7, 0.2};
  const Vec3 tau = link.inverse_dynamics(q, Vec3::zero(), Vec3::zero());
  EXPECT_DOUBLE_EQ(tau[0], 0.0);  // azimuth sees no gravity
  EXPECT_GT(tau[1], 0.0);
  // Insertion axis: gravity pulls the tool outward (down), so holding
  // force is negative of that component.
  EXPECT_NEAR(tau[2], -params.tool_mass * params.gravity * std::cos(0.7), 1e-12);
}

TEST(LinkDynamics, EnergyConservedWithoutFriction) {
  // Frictionless pendulum swing of the elbow: mechanical energy constant.
  LinkParams params;
  params.viscous_shoulder = params.viscous_elbow = 0.0;
  params.viscous_insertion = 0.0;
  params.coulomb_shoulder = params.coulomb_elbow = 0.0;
  params.coulomb_insertion = 0.0;
  const LinkDynamics link(params);

  JointVector q{0.0, 0.6, 0.2};
  JointVector qdot{0.0, 0.0, 0.0};
  const double e0 = link.mechanical_energy(q, qdot);

  const double h = 1e-5;
  for (int i = 0; i < 20000; ++i) {  // 0.2 s swing
    // Hold q3 fixed with an ideal constraint force; let q2 swing freely.
    const Vec3 bias = link.bias_forces(q, qdot);
    Vec3 tau{0.0, 0.0, bias[2]};
    const Vec3 acc = link.acceleration(q, qdot, tau);
    qdot[1] += h * acc[1];
    q[1] += h * qdot[1];
  }
  const double e1 = link.mechanical_energy(q, qdot);
  EXPECT_NE(q[1], 0.6);  // it actually swung
  EXPECT_NEAR(e1, e0, 5e-4 * std::abs(e0) + 1e-5);
}

TEST(LinkDynamics, FrictionDissipates) {
  const LinkDynamics link;  // default friction
  const JointVector q{0.0, 1.0, 0.2};
  const JointVector qdot{1.0, 0.0, 0.0};
  const Vec3 h = link.bias_forces(q, qdot);
  EXPECT_GT(h[0], 0.0);  // resisting positive shoulder velocity
}

// --- Combined RavenDynamicsModel ------------------------------------------------

TEST(RavenModel, RestStateIsNearEquilibrium) {
  const RavenDynamicsModel model;
  const JointVector q{0.0, 1.4, 0.15};
  auto x = model.make_rest_state(q);
  // With zero current, gravity sags the arm onto the cables a little but
  // the state should stay near rest over 50 ms.
  for (int i = 0; i < 1000; ++i) {
    x = model.step(x, Vec3::zero(), 5e-5, SolverKind::kRk4);
  }
  const JointVector q_after = RavenDynamicsModel::joint_pos(x);
  EXPECT_NEAR(q_after[0], q[0], 5e-3);
  EXPECT_NEAR(q_after[1], q[1], 5e-3);
  EXPECT_NEAR(q_after[2], q[2], 5e-3);
}

TEST(RavenModel, CableForceZeroAtConsistentRest) {
  const RavenDynamicsModel model;
  const auto x = model.make_rest_state(JointVector{0.2, 1.3, 0.1});
  const Vec3 f = model.cable_force(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(f[i], 0.0, 1e-9);
}

TEST(RavenModel, PositiveCurrentAcceleratesMotor) {
  const RavenDynamicsModel model;
  const auto x = model.make_rest_state(JointVector{0.0, 1.4, 0.15});
  const auto dx = model.derivative(x, Vec3{1.0, 0.0, 0.0});
  EXPECT_GT(dx[3], 0.0);  // shoulder motor accelerates
}

TEST(RavenModel, SnappedCableDecouplesJoint) {
  const RavenDynamicsModel model;
  auto x = model.make_rest_state(JointVector{0.0, 1.4, 0.15});
  ExternalEffects fx;
  fx.cable_scale = {1.0, 0.0, 1.0};  // elbow cable snapped
  // Drive the elbow motor hard; the joint must not react through the
  // snapped cable (gravity still acts on it).
  const auto dx = model.derivative(x, Vec3{0.0, 5.0, 0.0}, fx);
  EXPECT_GT(dx[4], 0.0);  // motor spins up freely
  // Joint acceleration == free response (same as zero-current snapped case).
  const auto dx0 = model.derivative(x, Vec3::zero(), fx);
  EXPECT_NEAR(dx[10], dx0[10], 1e-12);
}

TEST(RavenModel, ExtraMotorTorqueActsLikeCurrent) {
  const RavenDynamicsModel model;
  const auto x = model.make_rest_state(JointVector{0.0, 1.4, 0.15});
  const MotorParams& mp = model.params().motors[0];
  ExternalEffects fx;
  fx.extra_motor_torque = Vec3{mp.torque_constant * 0.5, 0.0, 0.0};
  const auto via_torque = model.derivative(x, Vec3::zero(), fx);
  const auto via_current = model.derivative(x, Vec3{0.5, 0.0, 0.0});
  EXPECT_NEAR(via_torque[3], via_current[3], 1e-9);
}

TEST(RavenModel, HardStopsPushBack) {
  RavenDynamicsParams params;
  params.enforce_hard_stops = true;
  const RavenDynamicsModel model(params);
  // Place the joint beyond its upper limit.
  JointVector q = params.hard_stop_limits.midpoint();
  q[0] = params.hard_stop_limits.joint(0).max + 0.05;
  auto x = model.make_rest_state(q);
  const auto dx = model.derivative(x, Vec3::zero());
  EXPECT_LT(dx[9], 0.0);  // pushed back toward the limit
}

TEST(RavenModel, SolversAgreeAtSmallStep) {
  const RavenDynamicsModel model;
  const auto x0 = model.make_rest_state(JointVector{0.1, 1.3, 0.12});
  const Vec3 currents{0.5, -0.3, 0.2};
  auto xe = x0;
  auto xr = x0;
  for (int i = 0; i < 100; ++i) {
    xe = model.step(xe, currents, 1e-5, SolverKind::kEuler);
    xr = model.step(xr, currents, 1e-5, SolverKind::kRk4);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(xe[i], xr[i], 5e-3 * (1.0 + std::abs(xr[i]))) << "state index " << i;
  }
}

TEST(RavenModel, CalibrationErrorScalesParams) {
  const RavenDynamicsParams base = RavenDynamicsParams::raven_defaults();
  const RavenDynamicsParams scaled = base.with_calibration_error(0.9);
  EXPECT_NEAR(scaled.link.tool_mass, 0.9 * base.link.tool_mass, 1e-12);
  EXPECT_NEAR(scaled.cable_stiffness[0], 0.9 * base.cable_stiffness[0], 1e-12);
  // Motors are catalogue values, not calibrated:
  EXPECT_DOUBLE_EQ(scaled.motors[0].rotor_inertia, base.motors[0].rotor_inertia);
}

TEST(RavenModel, ValidatesCableParams) {
  RavenDynamicsParams params;
  params.cable_stiffness[0] = 0.0;
  EXPECT_THROW(RavenDynamicsModel{params}, std::invalid_argument);
  params = RavenDynamicsParams{};
  params.cable_damping[1] = -1.0;
  EXPECT_THROW(RavenDynamicsModel{params}, std::invalid_argument);
}

TEST(RavenModel, StateAccessorsRoundTrip) {
  RavenDynamicsModel::State x{};
  RavenDynamicsModel::set_motor_pos(x, MotorVector{1.0, 2.0, 3.0});
  RavenDynamicsModel::set_motor_vel(x, MotorVector{4.0, 5.0, 6.0});
  RavenDynamicsModel::set_joint_pos(x, JointVector{7.0, 8.0, 9.0});
  RavenDynamicsModel::set_joint_vel(x, JointVector{10.0, 11.0, 12.0});
  EXPECT_EQ(RavenDynamicsModel::motor_pos(x), (MotorVector{1.0, 2.0, 3.0}));
  EXPECT_EQ(RavenDynamicsModel::motor_vel(x), (MotorVector{4.0, 5.0, 6.0}));
  EXPECT_EQ(RavenDynamicsModel::joint_pos(x), (JointVector{7.0, 8.0, 9.0}));
  EXPECT_EQ(RavenDynamicsModel::joint_vel(x), (JointVector{10.0, 11.0, 12.0}));
}

}  // namespace
}  // namespace rg
