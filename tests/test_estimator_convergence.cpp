// Observer-convergence sweeps: the deployed Luenberger estimator must
// lock onto the encoder stream across its documented gain range, and its
// detection variables must settle to a low noise floor on clean data.
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "hw/motor_controller.hpp"
#include "math/stats.hpp"

namespace rg {
namespace {

struct GainPoint {
  double l1;
  double l2;
};

class ObserverGains : public ::testing::TestWithParam<GainPoint> {};

MotorVector rest_angles() {
  const RavenDynamicsModel model;
  return model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15});
}

TEST_P(ObserverGains, ConvergesToOffsetEncoders) {
  EstimatorConfig cfg;
  cfg.observer_position_gain = GetParam().l1;
  cfg.observer_velocity_gain = GetParam().l2;
  DynamicModelEstimator est(cfg);
  const MotorVector m0 = rest_angles();
  est.observe_feedback(m0);

  MotorVector shifted = m0;
  shifted[0] += 0.08;
  shifted[1] -= 0.05;
  for (int i = 0; i < 800; ++i) {
    est.observe_feedback(shifted);
    est.commit({0, 0, 0});
  }
  const Prediction pred = est.predict({0, 0, 0});
  // Steady-state residual scales inversely with the position gain: the
  // model's own dynamics (gravity pulling the uncommanded arm) fight the
  // correction, a standard Luenberger disturbance offset.
  const double tol = 1e-3 + 1e-3 / GetParam().l1;
  EXPECT_NEAR(pred.mpos_now[0], shifted[0], tol);
  EXPECT_NEAR(pred.mpos_now[1], shifted[1], tol);
  // No residual oscillation left from the correction transient.
  EXPECT_LT(std::abs(pred.mvel_now[0]), 0.5);
}

TEST_P(ObserverGains, QuantizedRestStreamHasLowAccelFloor) {
  // Feed the quantized encoder reading of a *stationary* motor: the
  // predicted instant acceleration (a detection variable) must settle
  // well below attack scale (~10^4 rad/s^2) for every gain point.
  EstimatorConfig cfg;
  cfg.observer_position_gain = GetParam().l1;
  cfg.observer_velocity_gain = GetParam().l2;
  DynamicModelEstimator est(cfg);
  const MotorChannel channel;
  MotorVector quantized;
  const MotorVector m0 = rest_angles();
  for (std::size_t i = 0; i < 3; ++i) {
    quantized[i] = channel.angle_from_counts(channel.counts_from_angle(m0[i]));
  }
  est.observe_feedback(quantized);
  RunningStats accel;
  for (int i = 0; i < 500; ++i) {
    est.observe_feedback(quantized);
    const Prediction pred = est.predict({0, 0, 0});
    est.commit({0, 0, 0});
    if (i > 50) accel.add(pred.motor_instant_acc.norm_inf());
  }
  EXPECT_LT(accel.max(), 2000.0);
  EXPECT_LT(accel.mean(), 500.0);
}

INSTANTIATE_TEST_SUITE_P(GainGrid, ObserverGains,
                         ::testing::Values(GainPoint{0.05, 10.0}, GainPoint{0.1, 20.0},
                                           GainPoint{0.2, 40.0}, GainPoint{0.4, 80.0}));

TEST(ObserverDivergence, ZeroGainsDriftUnderModelError) {
  // Control case: with the correction disabled, a 3% calibration error
  // accumulates — the reason the deployed detector corrects at all.
  EstimatorConfig corrected_cfg;
  EstimatorConfig free_cfg;
  free_cfg.observer_position_gain = 0.0;
  free_cfg.observer_velocity_gain = 0.0;
  // The "plant" here is the nominal model; the estimators run a 0.97 copy.
  corrected_cfg.model = RavenDynamicsParams::raven_defaults().with_calibration_error(0.97);
  free_cfg.model = corrected_cfg.model;

  const RavenDynamicsModel truth;  // nominal
  auto x = truth.make_rest_state(JointVector{0.0, 1.2, 0.18});

  DynamicModelEstimator corrected(corrected_cfg);
  DynamicModelEstimator free_run(free_cfg);
  const std::array<std::int16_t, 3> dac{1500, -900, 400};
  corrected.observe_feedback(RavenDynamicsModel::motor_pos(x));
  free_run.observe_feedback(RavenDynamicsModel::motor_pos(x));

  Vec3 currents;
  const MotorChannel channel;
  for (std::size_t i = 0; i < 3; ++i) currents[i] = channel.current_from_dac(dac[i]);

  for (int i = 0; i < 1500; ++i) {
    x = truth.step(x, currents, 1e-3, SolverKind::kRk4);
    corrected.observe_feedback(RavenDynamicsModel::motor_pos(x));
    free_run.observe_feedback(RavenDynamicsModel::motor_pos(x));  // gains 0: ignored
    corrected.commit(dac);
    free_run.commit(dac);
  }
  const double err_corrected =
      (corrected.predict(dac).mpos_now - RavenDynamicsModel::motor_pos(x)).norm();
  const double err_free =
      (free_run.predict(dac).mpos_now - RavenDynamicsModel::motor_pos(x)).norm();
  EXPECT_LT(err_corrected, 0.1 * err_free + 1e-6);
}

}  // namespace
}  // namespace rg
