// Exposition-layer tests: Prometheus text rendering (golden output),
// the "rg.metrics.live/1" JSON round-trip, SnapshotDelta monotonicity
// under counter resets, and the rg::json parser the whole read side
// leans on.
//
// Suite name matters: scripts/tier1.sh runs `Exposition.*` under
// ThreadSanitizer alongside the admin/gateway suites.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace rg::obs {
namespace {

MetricsSnapshot small_snapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"rg.test.requests", 5});
  snap.gauges.push_back({"rg.test.load", 2.5});
  MetricsSnapshot::HistogramValue h;
  h.name = "rg.test.lat";
  h.data.observe(3);
  h.data.observe(7);
  h.data.observe(100);
  snap.histograms.push_back(h);
  return snap;
}

// --- Prometheus text ---------------------------------------------------------

TEST(Exposition, PrometheusNameMapping) {
  EXPECT_EQ(prometheus_name("rg.gw.rx_packets"), "rg_gw_rx_packets");
  EXPECT_EQ(prometheus_name("rg.gw.shard.0.queue_hwm"), "rg_gw_shard_0_queue_hwm");
  EXPECT_EQ(prometheus_name("already_legal:name"), "already_legal:name");
  EXPECT_EQ(prometheus_name("9starts.with-digit"), "_9starts_with_digit");
  EXPECT_EQ(prometheus_name(""), "");
}

TEST(Exposition, PrometheusGoldenOutput) {
  // Values 3 and 7 land in exact buckets (le == value); 100 lands in the
  // [100, 104) log-linear bucket, so its cumulative upper bound is 103.
  const std::string expected =
      "# HELP rg_test_requests rg.test.requests\n"
      "# TYPE rg_test_requests counter\n"
      "rg_test_requests 5\n"
      "# HELP rg_test_load rg.test.load\n"
      "# TYPE rg_test_load gauge\n"
      "rg_test_load 2.5\n"
      "# HELP rg_test_lat rg.test.lat (log-linear histogram)\n"
      "# TYPE rg_test_lat histogram\n"
      "rg_test_lat_bucket{le=\"3\"} 1\n"
      "rg_test_lat_bucket{le=\"7\"} 2\n"
      "rg_test_lat_bucket{le=\"103\"} 3\n"
      "rg_test_lat_bucket{le=\"+Inf\"} 3\n"
      "rg_test_lat_sum 110\n"
      "rg_test_lat_count 3\n";
  EXPECT_EQ(to_prometheus(small_snapshot()), expected);
}

TEST(Exposition, PrometheusEmptyHistogramHasNoNan) {
  MetricsSnapshot snap;
  snap.histograms.push_back({"rg.test.idle", {}});
  const std::string text = to_prometheus(snap);
  EXPECT_EQ(text,
            "# HELP rg_test_idle rg.test.idle (log-linear histogram)\n"
            "# TYPE rg_test_idle histogram\n"
            "rg_test_idle_bucket{le=\"+Inf\"} 0\n"
            "rg_test_idle_sum 0\n"
            "rg_test_idle_count 0\n");
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

// --- Live JSON ---------------------------------------------------------------

TEST(Exposition, LiveJsonRoundTripReconstructsHistograms) {
  const MetricsSnapshot snap = small_snapshot();
  const std::string text = to_live_json(snap, 123456789u);

  const Result<LiveSnapshot> parsed = parse_live_json(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const LiveSnapshot& live = parsed.value();
  EXPECT_EQ(live.captured_ns, 123456789u);

  ASSERT_EQ(live.metrics.counters.size(), 1u);
  EXPECT_EQ(live.metrics.counters[0].name, "rg.test.requests");
  EXPECT_EQ(live.metrics.counters[0].value, 5u);

  ASSERT_EQ(live.metrics.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(live.metrics.gauges[0].value, 2.5);

  // The sparse bucket encoding restores the exact HistogramData: same
  // buckets, count, sum, min, max (operator== is member-wise).
  ASSERT_EQ(live.metrics.histograms.size(), 1u);
  EXPECT_EQ(live.metrics.histograms[0].name, "rg.test.lat");
  EXPECT_EQ(live.metrics.histograms[0].data, snap.histograms[0].data);
}

TEST(Exposition, LiveJsonEmptyHistogramStaysEmptyThroughRoundTrip) {
  MetricsSnapshot snap;
  snap.histograms.push_back({"rg.test.idle", {}});
  const std::string text = to_live_json(snap, 1);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_NE(text.find("\"valid\": false"), std::string::npos);

  const Result<LiveSnapshot> parsed = parse_live_json(text);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().metrics.histograms.size(), 1u);
  const HistogramData& data = parsed.value().metrics.histograms[0].data;
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data, HistogramData{});  // min stays at the empty sentinel
}

TEST(Exposition, LiveJsonRejectsWrongSchemaAndGarbage) {
  EXPECT_FALSE(parse_live_json("{\"schema\": \"rg.metrics/1\"}").ok());
  EXPECT_FALSE(parse_live_json("[1, 2, 3]").ok());
  EXPECT_FALSE(parse_live_json("not json at all").ok());
  EXPECT_FALSE(parse_live_json("{\"schema\": \"rg.metrics.live/1\"} trailing").ok());
  // Bucket index out of range must be rejected, not written out of bounds.
  EXPECT_FALSE(parse_live_json("{\"schema\": \"rg.metrics.live/1\", \"histograms\": "
                               "[{\"name\": \"h\", \"count\": 1, \"buckets\": [[99999, 1]]}]}")
                   .ok());
}

// --- SnapshotDelta -----------------------------------------------------------

TEST(Exposition, SnapshotDeltaComputesRates) {
  MetricsSnapshot earlier;
  earlier.counters.push_back({"rg.test.requests", 10});
  MetricsSnapshot later;
  later.counters.push_back({"rg.test.requests", 25});
  later.counters.push_back({"rg.test.fresh", 7});  // absent earlier: full value
  later.gauges.push_back({"rg.test.load", 0.25});

  const SnapshotDelta delta = SnapshotDelta::between(earlier, later, 1'000'000'000u);
  ASSERT_NE(delta.counter("rg.test.requests"), nullptr);
  EXPECT_EQ(delta.counter("rg.test.requests")->delta, 15u);
  ASSERT_NE(delta.counter("rg.test.fresh"), nullptr);
  EXPECT_EQ(delta.counter("rg.test.fresh")->delta, 7u);
  EXPECT_DOUBLE_EQ(delta.rate_per_sec("rg.test.requests"), 15.0);
  EXPECT_DOUBLE_EQ(delta.rate_per_sec("rg.test.absent"), 0.0);
  ASSERT_EQ(delta.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(delta.gauges[0].value, 0.25);  // gauges carry the later value
}

TEST(Exposition, SnapshotDeltaClampsCounterResetToZero) {
  MetricsSnapshot earlier;
  earlier.counters.push_back({"rg.test.requests", 1000});
  MetricsSnapshot later;
  later.counters.push_back({"rg.test.requests", 3});  // registry restarted

  const SnapshotDelta delta = SnapshotDelta::between(earlier, later, 1'000'000'000u);
  ASSERT_NE(delta.counter("rg.test.requests"), nullptr);
  EXPECT_EQ(delta.counter("rg.test.requests")->delta, 0u);
  EXPECT_DOUBLE_EQ(delta.rate_per_sec("rg.test.requests"), 0.0);
}

TEST(Exposition, SnapshotDeltaHistogramIsIntervalOnly) {
  MetricsSnapshot earlier;
  {
    MetricsSnapshot::HistogramValue h;
    h.name = "rg.test.lat";
    h.data.observe(3);
    h.data.observe(100);
    earlier.histograms.push_back(h);
  }
  MetricsSnapshot later = earlier;
  later.histograms[0].data.observe(7);
  later.histograms[0].data.observe(7);

  const SnapshotDelta delta = SnapshotDelta::between(earlier, later, 0);
  const HistogramData* d = delta.histogram("rg.test.lat");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 2u);
  EXPECT_EQ(d->sum, 14u);
  EXPECT_EQ(d->buckets[7], 2u);
  EXPECT_EQ(d->buckets[3], 0u);  // unchanged buckets cancel out
}

TEST(Exposition, SnapshotDeltaHistogramResetClampsBucketwise) {
  MetricsSnapshot earlier;
  {
    MetricsSnapshot::HistogramValue h;
    h.name = "rg.test.lat";
    for (int i = 0; i < 50; ++i) h.data.observe(9);
    earlier.histograms.push_back(h);
  }
  MetricsSnapshot later;
  {
    MetricsSnapshot::HistogramValue h;
    h.name = "rg.test.lat";
    h.data.observe(4);  // fresh registry after a restart
    later.histograms.push_back(h);
  }

  const SnapshotDelta delta = SnapshotDelta::between(earlier, later, 0);
  const HistogramData* d = delta.histogram("rg.test.lat");
  ASSERT_NE(d, nullptr);
  // count falls back to the bucket-derived total; no bucket goes negative.
  EXPECT_EQ(d->buckets[4], 1u);
  EXPECT_EQ(d->buckets[9], 0u);
  EXPECT_EQ(d->count, 1u);
}

// --- rg::json parser ---------------------------------------------------------

TEST(Exposition, JsonParserBasics) {
  const Result<json::Value> v =
      json::parse("{\"a\": [1, -2.5, true, null], \"b\": {\"nested\": \"x\\n\\u0041\"}}");
  ASSERT_TRUE(v.ok()) << v.error().to_string();
  const json::Value& doc = v.value();
  ASSERT_TRUE(doc.is_object());
  const json::Value* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 4u);
  EXPECT_EQ(a->as_array()[0].as_u64(), 1u);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), -2.5);
  EXPECT_TRUE(a->as_array()[2].as_bool());
  EXPECT_TRUE(a->as_array()[3].is_null());
  const json::Value* b = doc.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("nested")->as_string(), "x\nA");
}

TEST(Exposition, JsonParserRejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").ok());
  EXPECT_FALSE(json::parse("{\"a\": }").ok());
  EXPECT_FALSE(json::parse("{\"a\": 1,}").ok());
  EXPECT_FALSE(json::parse("{\"a\": 1} extra").ok());
  EXPECT_FALSE(json::parse("\"unterminated").ok());
  EXPECT_FALSE(json::parse("{\"dangling\": \"\\").ok());
  // Depth bomb: past kMaxDepth the parser must error, not overflow.
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep).ok());
}

}  // namespace
}  // namespace rg::obs
