// Unit + property tests for the fixed-point (embedded) model variant.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fixed_point.hpp"
#include "core/fixed_point_model.hpp"

namespace rg {
namespace {

// --- Fixed64 arithmetic -------------------------------------------------------------

TEST(Fixed64, DoubleRoundTrip) {
  for (double v : {0.0, 1.0, -1.0, 3.14159, -123.456, 1e-6, 2.0e9 / 4294967296.0}) {
    EXPECT_NEAR(Fixed64::from_double(v).to_double(), v, 1e-9);
  }
}

TEST(Fixed64, Arithmetic) {
  const Fixed64 a = Fixed64::from_double(2.5);
  const Fixed64 b = Fixed64::from_double(-1.25);
  EXPECT_NEAR((a + b).to_double(), 1.25, 1e-9);
  EXPECT_NEAR((a - b).to_double(), 3.75, 1e-9);
  EXPECT_NEAR((a * b).to_double(), -3.125, 1e-9);
  EXPECT_NEAR((-a).to_double(), -2.5, 1e-9);
}

TEST(Fixed64, MultiplyPrecision) {
  const Fixed64 tiny = Fixed64::from_double(1.42e-5);   // rotor inertia scale
  const Fixed64 huge = Fixed64::from_double(21000.0);   // acceleration scale
  EXPECT_NEAR((tiny * huge).to_double(), 1.42e-5 * 21000.0, 1e-5);
}

TEST(Fixed64, ClampAbs) {
  const Fixed64 limit = Fixed64::from_int(1);
  EXPECT_NEAR(Fixed64::from_double(5.0).clamp_abs(limit).to_double(), 1.0, 1e-12);
  EXPECT_NEAR(Fixed64::from_double(-5.0).clamp_abs(limit).to_double(), -1.0, 1e-12);
  EXPECT_NEAR(Fixed64::from_double(0.3).clamp_abs(limit).to_double(), 0.3, 1e-9);
}

TEST(Fixed64, Reciprocal) {
  EXPECT_NEAR((fixed_reciprocal(4.0) * Fixed64::from_int(8)).to_double(), 2.0, 1e-8);
}

// --- FixedPointModel ------------------------------------------------------------------

TEST(FixedPointModel, StateConversionRoundTrip) {
  RavenDynamicsModel::State x{};
  for (std::size_t i = 0; i < 12; ++i) x[i] = 0.1 * static_cast<double>(i) - 0.5;
  const auto fx = FixedPointModel::from_double(x);
  const auto back = FixedPointModel::to_double(fx);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(FixedPointModel, SingleStepMatchesDoubleModel) {
  const RavenDynamicsModel ref;
  const FixedPointModel fixed;
  const auto x0 = ref.make_rest_state(JointVector{0.1, 1.4, 0.15});
  const Vec3 currents{0.8, -0.5, 0.3};

  const auto next_ref = ref.step(x0, currents, 1e-3, SolverKind::kEuler);
  const auto next_fix = FixedPointModel::to_double(fixed.step(
      FixedPointModel::from_double(x0),
      {Fixed64::from_double(currents[0]), Fixed64::from_double(currents[1]),
       Fixed64::from_double(currents[2])},
      Fixed64::from_double(1e-3)));

  // LUT trig + piecewise-linear friction give small, bounded deviation.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_NEAR(next_fix[i], next_ref[i], 2e-3 * (1.0 + std::abs(next_ref[i])))
        << "state index " << i;
  }
}

TEST(FixedPointModel, TrajectoryStaysClose) {
  // 200 ms of free response from a displaced state: the fixed-point and
  // double models must not diverge materially.
  const RavenDynamicsModel ref;
  const FixedPointModel fixed;
  auto xd = ref.make_rest_state(JointVector{0.2, 1.2, 0.18});
  xd[3] = 5.0;  // give the shoulder motor some speed
  auto xf = FixedPointModel::from_double(xd);
  const std::array<Fixed64, 3> zero{};
  const Fixed64 h = Fixed64::from_double(1e-3);

  for (int i = 0; i < 200; ++i) {
    xd = ref.step(xd, Vec3::zero(), 1e-3, SolverKind::kEuler);
    xf = fixed.step(xf, zero, h);
  }
  const auto xfd = FixedPointModel::to_double(xf);
  // Joint positions within a milliradian / tens of microns.
  EXPECT_NEAR(xfd[6], xd[6], 2e-3);
  EXPECT_NEAR(xfd[7], xd[7], 2e-3);
  EXPECT_NEAR(xfd[8], xd[8], 1e-4);
}

TEST(FixedPointModel, GravitySignMatchesDoubleModel) {
  // Physical sanity entirely inside the integer path: from rest the cable
  // has no stretch, so the first-step insertion-rate change is pure
  // gravity — its sign (and rough magnitude) must match the double model.
  const FixedPointModel fixed;
  const RavenDynamicsModel ref;
  const auto x0 = ref.make_rest_state(JointVector{0.0, 0.6, 0.15});
  const std::array<Fixed64, 3> zero{};
  const auto next = fixed.step(FixedPointModel::from_double(x0), zero,
                               Fixed64::from_double(1e-3));
  const auto next_ref = ref.step(x0, Vec3::zero(), 1e-3, SolverKind::kEuler);
  EXPECT_NE(next_ref[11], 0.0);
  EXPECT_EQ(next[11].to_double() < 0.0, next_ref[11] < 0.0);
  EXPECT_NEAR(next[11].to_double(), next_ref[11], 0.05 * std::abs(next_ref[11]) + 1e-6);
}

}  // namespace
}  // namespace rg
