// Fuzz-style robustness tests: every parser that consumes attacker-
// influenced bytes must fail safe (return an error Result), never crash,
// and never accept garbage as valid where validity is checked.
#include <gtest/gtest.h>

#include <sstream>

#include "attack/packet_analyzer.hpp"
#include "common/rng.hpp"
#include "defense/bitw.hpp"
#include "hw/usb_packet.hpp"
#include "net/itp_packet.hpp"
#include "trajectory/recorded.hpp"

namespace rg {
namespace {

std::vector<std::uint8_t> random_bytes(Pcg32& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, CommandDecoderNeverCrashes) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    const auto bytes = random_bytes(rng, n);
    const auto lax = decode_command(bytes, false);
    const auto strict = decode_command(bytes, true);
    // Strict acceptance implies lax acceptance.
    if (strict.ok()) {
      EXPECT_TRUE(lax.ok());
    }
    // Wrong-size inputs are always rejected.
    if (n != kCommandPacketSize) {
      EXPECT_FALSE(lax.ok());
      EXPECT_FALSE(strict.ok());
    }
  }
}

TEST_P(DecoderFuzz, FeedbackDecoderNeverCrashes) {
  Pcg32 rng(GetParam() + 100);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 80);
    const auto bytes = random_bytes(rng, n);
    (void)decode_feedback(bytes, false);
    (void)decode_feedback(bytes, true);
  }
}

TEST_P(DecoderFuzz, ItpDecoderNeverCrashes) {
  Pcg32 rng(GetParam() + 200);
  int strict_accepts = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    const auto bytes = random_bytes(rng, n);
    if (decode_itp(bytes, true).ok()) ++strict_accepts;
  }
  // A random 30-byte buffer passes the XOR checksum with p = 1/256; over
  // ~4000/65 correctly-sized trials expect a couple at most.
  EXPECT_LE(strict_accepts, 5);
}

TEST_P(DecoderFuzz, BitwVerifierRejectsRandomFrames) {
  Pcg32 rng(GetParam() + 300);
  CommandVerifier verifier(MacKey::from_seed(1234));
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    EXPECT_FALSE(verifier.verify(random_bytes(rng, n)).has_value());
  }
}

TEST_P(DecoderFuzz, EncodedPacketsAlwaysRoundTrip) {
  // Property: encode(decode-able struct) -> strict decode succeeds, for
  // random field values.
  Pcg32 rng(GetParam() + 400);
  const RobotState states[] = {RobotState::kEStop, RobotState::kInit, RobotState::kPedalUp,
                               RobotState::kPedalDown};
  for (int i = 0; i < 1000; ++i) {
    CommandPacket pkt;
    pkt.state = states[rng.uniform_int(0, 3)];
    pkt.watchdog_bit = rng.uniform() < 0.5;
    for (auto& dac : pkt.dac) {
      dac = static_cast<std::int16_t>(rng.uniform_int(0, 65535) - 32768);
    }
    const auto decoded = decode_command(encode_command(pkt), true);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), pkt);
  }
}

TEST_P(DecoderFuzz, PacketAnalyzerHandlesRandomCaptures) {
  Pcg32 rng(GetParam() + 500);
  std::vector<CapturedPacket> capture;
  const std::size_t size = rng.uniform_int(1, 40);
  for (int i = 0; i < 300; ++i) {
    capture.push_back(CapturedPacket{static_cast<std::uint64_t>(i), random_bytes(rng, size)});
  }
  PacketAnalyzer analyzer(std::move(capture));
  (void)analyzer.infer_state();  // may fail, must not crash
  EXPECT_EQ(analyzer.byte_profiles().size(), size);
}

TEST_P(DecoderFuzz, TrajectoryCsvParserNeverCrashes) {
  Pcg32 rng(GetParam() + 600);
  const char alphabet[] = "0123456789.,-e\nxyzt ";
  for (int i = 0; i < 300; ++i) {
    std::string text = "t,x,y,z\n";
    const std::size_t len = rng.uniform_int(0, 200);
    for (std::size_t j = 0; j < len; ++j) {
      text += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];
    }
    std::istringstream is(text);
    (void)RecordedTrajectory::from_csv(is);  // Result either way, no crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rg
