// Fuzz-style robustness tests: every parser that consumes attacker-
// influenced bytes must fail safe (return an error Result), never crash,
// and never accept garbage as valid where validity is checked.
#include <gtest/gtest.h>

#include <sstream>

#include "attack/packet_analyzer.hpp"
#include "common/rng.hpp"
#include "defense/bitw.hpp"
#include "hw/usb_packet.hpp"
#include "net/itp_packet.hpp"
#include "svc/gateway.hpp"
#include "svc/transport.hpp"
#include "trajectory/recorded.hpp"

namespace rg {
namespace {

std::vector<std::uint8_t> random_bytes(Pcg32& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, CommandDecoderNeverCrashes) {
  Pcg32 rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    const auto bytes = random_bytes(rng, n);
    const auto lax = decode_command(bytes, false);
    const auto strict = decode_command(bytes, true);
    // Strict acceptance implies lax acceptance.
    if (strict.ok()) {
      EXPECT_TRUE(lax.ok());
    }
    // Wrong-size inputs are always rejected.
    if (n != kCommandPacketSize) {
      EXPECT_FALSE(lax.ok());
      EXPECT_FALSE(strict.ok());
    }
  }
}

TEST_P(DecoderFuzz, FeedbackDecoderNeverCrashes) {
  Pcg32 rng(GetParam() + 100);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 80);
    const auto bytes = random_bytes(rng, n);
    (void)decode_feedback(bytes, false);
    (void)decode_feedback(bytes, true);
  }
}

TEST_P(DecoderFuzz, ItpDecoderNeverCrashes) {
  Pcg32 rng(GetParam() + 200);
  int strict_accepts = 0;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    const auto bytes = random_bytes(rng, n);
    if (decode_itp(bytes, true).ok()) ++strict_accepts;
  }
  // A random 30-byte buffer passes the XOR checksum with p = 1/256; over
  // ~4000/65 correctly-sized trials expect a couple at most.
  EXPECT_LE(strict_accepts, 5);
}

TEST_P(DecoderFuzz, BitwVerifierRejectsRandomFrames) {
  Pcg32 rng(GetParam() + 300);
  CommandVerifier verifier(MacKey::from_seed(1234));
  for (int i = 0; i < 2000; ++i) {
    const std::size_t n = rng.uniform_int(0, 64);
    EXPECT_FALSE(verifier.verify(random_bytes(rng, n)).has_value());
  }
}

TEST_P(DecoderFuzz, EncodedPacketsAlwaysRoundTrip) {
  // Property: encode(decode-able struct) -> strict decode succeeds, for
  // random field values.
  Pcg32 rng(GetParam() + 400);
  const RobotState states[] = {RobotState::kEStop, RobotState::kInit, RobotState::kPedalUp,
                               RobotState::kPedalDown};
  for (int i = 0; i < 1000; ++i) {
    CommandPacket pkt;
    pkt.state = states[rng.uniform_int(0, 3)];
    pkt.watchdog_bit = rng.uniform() < 0.5;
    for (auto& dac : pkt.dac) {
      dac = static_cast<std::int16_t>(rng.uniform_int(0, 65535) - 32768);
    }
    const auto decoded = decode_command(encode_command(pkt), true);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), pkt);
  }
}

TEST_P(DecoderFuzz, PacketAnalyzerHandlesRandomCaptures) {
  Pcg32 rng(GetParam() + 500);
  std::vector<CapturedPacket> capture;
  const std::size_t size = rng.uniform_int(1, 40);
  for (int i = 0; i < 300; ++i) {
    capture.push_back(CapturedPacket{static_cast<std::uint64_t>(i), random_bytes(rng, size)});
  }
  PacketAnalyzer analyzer(std::move(capture));
  (void)analyzer.infer_state();  // may fail, must not crash
  EXPECT_EQ(analyzer.byte_profiles().size(), size);
}

TEST_P(DecoderFuzz, TrajectoryCsvParserNeverCrashes) {
  Pcg32 rng(GetParam() + 600);
  const char alphabet[] = "0123456789.,-e\nxyzt ";
  for (int i = 0; i < 300; ++i) {
    std::string text = "t,x,y,z\n";
    const std::size_t len = rng.uniform_int(0, 200);
    for (std::size_t j = 0; j < len; ++j) {
      text += alphabet[rng.uniform_int(0, sizeof(alphabet) - 2)];
    }
    std::istringstream is(text);
    (void)RecordedTrajectory::from_csv(is);  // Result either way, no crash
  }
}

TEST_P(DecoderFuzz, GatewayIngestNeverCrashes) {
  // The full ingest path (size check, decode, session table, replay
  // window, shard dispatch) fed truncated, oversized, bit-flipped and
  // flag-garbage datagrams from a handful of endpoints.  Everything must
  // classify cleanly: the stats ledger has to balance to the datagram
  // count, and accepted traffic must equal the ticks the shards ran.
  Pcg32 rng(GetParam() + 700);
  svc::LoopbackTransport transport;
  svc::GatewayConfig cfg;
  cfg.shards = 1;
  cfg.threaded = false;
  cfg.idle_timeout_ms = 1u << 30;
  svc::TeleopGateway gateway(cfg, transport);

  std::uint32_t seq = 1;
  for (int i = 0; i < 1500; ++i) {
    const svc::Endpoint from{0x7f000001u,
                             static_cast<std::uint16_t>(9000 + rng.uniform_int(0, 3))};
    const std::uint32_t kind = rng.uniform_int(0, 3);
    if (kind == 0) {  // random bytes, random size (mostly wrong-sized)
      transport.inject(from, random_bytes(rng, rng.uniform_int(0, 64)));
    } else {
      ItpPacket pkt;
      pkt.sequence = seq++;
      pkt.pedal_down = rng.uniform() < 0.5;
      ItpBytes bytes = encode_itp(pkt);
      if (kind == 1) {  // single bit flip anywhere in the frame
        const auto byte = static_cast<std::size_t>(rng.uniform_int(0, 29));
        bytes[byte] = static_cast<std::uint8_t>(bytes[byte] ^ (1u << rng.uniform_int(0, 7)));
      }
      transport.inject(from, std::span<const std::uint8_t>{bytes});
    }
    if (i % 64 == 0) {
      while (transport.pending() > 0) (void)gateway.pump(1);
    }
  }
  while (transport.pending() > 0) (void)gateway.pump(1);
  gateway.drain();

  const svc::GatewayStats s = gateway.stats();
  EXPECT_EQ(s.datagrams,
            s.accepted + s.rejected_size + s.rejected_mac + s.rejected_checksum +
                s.rejected_flags + s.rejected_duplicate + s.rejected_replayed +
                s.rejected_stale + s.rejected_session_limit + s.backpressure_dropped);
  EXPECT_GT(s.accepted, 0u);
  EXPECT_GT(s.rejected_size, 0u);
  std::uint64_t ticks = 0;
  for (const svc::SessionStats& sess : gateway.sessions()) ticks += sess.shard.ticks;
  EXPECT_EQ(ticks, s.accepted);
  gateway.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace rg
