// Gateway service tests: session lifecycle, ingest classification
// (anti-replay window, MAC, checksum, flag bits), backpressure, shard
// determinism, and a real-socket smoke test.
//
// The suite names matter: scripts/tier1.sh runs `Gateway.*` under
// ThreadSanitizer, so the threaded tests double as the gateway's
// concurrency regression net.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/itp_packet.hpp"
#include "net/master_console.hpp"
#include "svc/gateway.hpp"
#include "svc/session.hpp"
#include "svc/transport.hpp"
#include "svc/udp_transport.hpp"
#include "trajectory/trajectory.hpp"

namespace rg::svc {
namespace {

Endpoint ep(std::uint16_t port) { return Endpoint{0x0a000001u, port}; }

ItpBytes packet_with_sequence(std::uint32_t seq) {
  ItpPacket pkt;
  pkt.sequence = seq;
  pkt.pedal_down = true;
  return encode_itp(pkt);
}

void inject(LoopbackTransport& transport, const Endpoint& from, const ItpBytes& bytes) {
  transport.inject(from, std::span<const std::uint8_t>{bytes});
}

GatewayConfig inline_config() {
  GatewayConfig cfg;
  cfg.shards = 1;
  cfg.threaded = false;
  cfg.idle_timeout_ms = 1u << 30;
  return cfg;
}

void pump_all(TeleopGateway& gateway, LoopbackTransport& transport, std::uint64_t now_ms) {
  while (transport.pending() > 0) (void)gateway.pump(now_ms);
  gateway.drain();
}

// --- replay window unit ----------------------------------------------------

TEST(Gateway, ReplayWindowSemantics) {
  ReplayWindow w;
  EXPECT_EQ(w.check_and_update(5).verdict, IngestVerdict::kAccepted);
  EXPECT_EQ(w.check_and_update(6).verdict, IngestVerdict::kAccepted);
  // Duplicate of the newest.
  EXPECT_EQ(w.check_and_update(6).verdict, IngestVerdict::kDuplicate);
  // Late but new inside the window: accepted, flagged out-of-order.
  const ReplayWindow::Outcome late = w.check_and_update(4);
  EXPECT_EQ(late.verdict, IngestVerdict::kAccepted);
  EXPECT_TRUE(late.out_of_order);
  // Replay of an already-accepted number inside the window.
  EXPECT_EQ(w.check_and_update(4).verdict, IngestVerdict::kReplayed);
  EXPECT_EQ(w.check_and_update(5).verdict, IngestVerdict::kReplayed);
  // A jump records the gap (presumed losses).
  const ReplayWindow::Outcome jump = w.check_and_update(100);
  EXPECT_EQ(jump.verdict, IngestVerdict::kAccepted);
  EXPECT_EQ(jump.gap, 93u);
  // Older than the 64-wide window: stale.
  EXPECT_EQ(w.check_and_update(36).verdict, IngestVerdict::kStale);
  // Still inside: fresh number accepted.
  EXPECT_EQ(w.check_and_update(37).verdict, IngestVerdict::kAccepted);
}

// --- session lifecycle -----------------------------------------------------

TEST(Gateway, SessionLifecycleAndIdleEviction) {
  LoopbackTransport transport;
  GatewayConfig cfg = inline_config();
  cfg.idle_timeout_ms = 100;
  TeleopGateway gateway(cfg, transport);

  for (std::uint32_t s = 1; s <= 3; ++s) inject(transport, ep(100), packet_with_sequence(s));
  pump_all(gateway, transport, 10);
  GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(stats.active_sessions, 1u);
  EXPECT_EQ(stats.accepted, 3u);

  // Quiet past the timeout: evicted on the next pump.
  (void)gateway.pump(200);
  gateway.drain();
  stats = gateway.stats();
  EXPECT_EQ(stats.active_sessions, 0u);
  EXPECT_EQ(stats.sessions_evicted, 1u);

  // The evicted session's record survives with its final stats.
  const auto sessions = gateway.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_FALSE(sessions[0].active);
  EXPECT_EQ(sessions[0].counters.accepted, 3u);
  EXPECT_EQ(sessions[0].shard.ticks, 3u);

  // The same endpoint reconnecting gets a fresh session (and id).
  inject(transport, ep(100), packet_with_sequence(1));
  pump_all(gateway, transport, 210);
  stats = gateway.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.active_sessions, 1u);
}

TEST(Gateway, SessionTableCapacityEnforced) {
  LoopbackTransport transport;
  GatewayConfig cfg = inline_config();
  cfg.max_sessions = 2;
  TeleopGateway gateway(cfg, transport);
  for (std::uint16_t port = 1; port <= 3; ++port) {
    inject(transport, ep(port), packet_with_sequence(1));
  }
  pump_all(gateway, transport, 1);
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.sessions_opened, 2u);
  EXPECT_EQ(stats.rejected_session_limit, 1u);
}

// --- ingest classification -------------------------------------------------

TEST(Gateway, ReplayDuplicateAndStaleRejected) {
  LoopbackTransport transport;
  TeleopGateway gateway(inline_config(), transport);
  const Endpoint from = ep(7);

  for (std::uint32_t s = 1; s <= 5; ++s) inject(transport, from, packet_with_sequence(s));
  inject(transport, from, packet_with_sequence(5));    // duplicate of newest
  inject(transport, from, packet_with_sequence(3));    // replay inside window
  inject(transport, from, packet_with_sequence(200));  // jump: 194 presumed lost
  inject(transport, from, packet_with_sequence(199));  // late but new: accepted
  inject(transport, from, packet_with_sequence(100));  // older than the window
  pump_all(gateway, transport, 1);

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 7u);
  EXPECT_EQ(stats.rejected_duplicate, 1u);
  EXPECT_EQ(stats.rejected_replayed, 1u);
  EXPECT_EQ(stats.rejected_stale, 1u);
  EXPECT_EQ(stats.out_of_order_accepted, 1u);

  const auto sessions = gateway.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].counters.accepted, 7u);
  EXPECT_EQ(sessions[0].counters.duplicates, 1u);
  EXPECT_EQ(sessions[0].counters.replayed, 1u);
  EXPECT_EQ(sessions[0].counters.stale, 1u);
  EXPECT_EQ(sessions[0].counters.out_of_order, 1u);
  EXPECT_EQ(sessions[0].counters.lost_gap, 194u);
  // Only accepted datagrams became control ticks.
  EXPECT_EQ(sessions[0].shard.ticks, 7u);
}

TEST(Gateway, ChecksumAndFlagRejectionsAreDistinct) {
  LoopbackTransport transport;
  TeleopGateway gateway(inline_config(), transport);
  const Endpoint from = ep(8);

  inject(transport, from, packet_with_sequence(1));

  ItpBytes flipped = packet_with_sequence(2);
  flipped[10] = static_cast<std::uint8_t>(flipped[10] ^ 0x40);  // checksum now wrong
  inject(transport, from, flipped);

  ItpBytes garbled = packet_with_sequence(3);
  garbled[4] = static_cast<std::uint8_t>(garbled[4] | 0x20);  // undefined flag bit
  std::uint8_t c = 0;
  for (std::size_t i = 0; i + 1 < kItpPacketSize; ++i) {
    c = static_cast<std::uint8_t>(c ^ garbled[i]);
  }
  garbled[kItpPacketSize - 1] = c;  // checksum fixed up: flags alone reject it
  inject(transport, from, garbled);

  transport.inject(from, std::vector<std::uint8_t>(12, 0));  // truncated

  pump_all(gateway, transport, 1);
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_checksum, 1u);
  EXPECT_EQ(stats.rejected_flags, 1u);
  EXPECT_EQ(stats.rejected_size, 1u);
}

TEST(Gateway, MacRequiredVerifiesTagsAtIngest) {
  LoopbackTransport transport;
  GatewayConfig cfg = inline_config();
  cfg.require_mac = true;
  cfg.mac_key = MacKey::from_seed(42);
  TeleopGateway gateway(cfg, transport);
  const Endpoint from = ep(9);

  // Bare 30-byte ITP: wrong frame size under the MAC regime.
  inject(transport, from, packet_with_sequence(1));
  // Sealed under the wrong key.
  const MacFrameBytes wrong_key = seal_itp_frame(packet_with_sequence(2), MacKey::from_seed(43));
  transport.inject(from, std::span<const std::uint8_t>{wrong_key});
  // Sealed correctly, then tampered in flight.
  MacFrameBytes tampered = seal_itp_frame(packet_with_sequence(3), cfg.mac_key);
  tampered[12] = static_cast<std::uint8_t>(tampered[12] ^ 0x01);
  transport.inject(from, std::span<const std::uint8_t>{tampered});
  // Sealed correctly.
  const MacFrameBytes good = seal_itp_frame(packet_with_sequence(4), cfg.mac_key);
  transport.inject(from, std::span<const std::uint8_t>{good});

  pump_all(gateway, transport, 1);
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.rejected_size, 1u);
  EXPECT_EQ(stats.rejected_mac, 2u);
  EXPECT_EQ(stats.accepted, 1u);
  const auto sessions = gateway.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].shard.ticks, 1u);
}

TEST(Gateway, BackpressureCountsDropsWhenShardQueueFull) {
  LoopbackTransport transport;
  GatewayConfig cfg = inline_config();
  cfg.max_queue_per_shard = 4;
  TeleopGateway gateway(cfg, transport);
  const Endpoint from = ep(11);
  for (std::uint32_t s = 1; s <= 50; ++s) inject(transport, from, packet_with_sequence(s));
  pump_all(gateway, transport, 1);
  const GatewayStats stats = gateway.stats();
  // The open item takes one queue slot; three datagrams fit behind it.
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.backpressure_dropped, 47u);
  const auto sessions = gateway.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].counters.backpressure, 47u);
  EXPECT_EQ(sessions[0].shard.ticks, 3u);
  // The shard's own view: every refused datagram counted as ring_full,
  // and the ring's high watermark never exceeded its capacity.
  const auto shard_stats = gateway.shard_stats();
  ASSERT_EQ(shard_stats.size(), 1u);
  EXPECT_EQ(shard_stats[0].ring_full, 47u);
  EXPECT_LE(shard_stats[0].queue_hwm, 4u);
  EXPECT_GT(shard_stats[0].queue_hwm, 0u);
}

TEST(Gateway, LoopbackSendBatchRecordsEgress) {
  LoopbackTransport transport;
  std::vector<TxDatagram> batch(3);
  const ItpBytes a = packet_with_sequence(1);
  const ItpBytes b = packet_with_sequence(2);
  batch[0].assign(ep(1), std::span<const std::uint8_t>{a});
  batch[1].assign(ep(2), std::span<const std::uint8_t>{b});
  batch[2].assign(ep(3), std::span<const std::uint8_t>{a});
  EXPECT_EQ(transport.send_batch(batch), 3u);

  const auto sent = transport.take_sent();
  ASSERT_EQ(sent.size(), 3u);
  EXPECT_EQ(sent[0].to, ep(1));
  EXPECT_EQ(sent[1].to, ep(2));
  EXPECT_EQ(sent[2].to, ep(3));
  EXPECT_EQ(sent[0].len, kItpPacketSize);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), sent[0].bytes.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), sent[1].bytes.begin()));
  // take_sent() moves the log out: a second take is empty.
  EXPECT_TRUE(transport.take_sent().empty());
}

// --- shard determinism -----------------------------------------------------

std::vector<ItpBytes> console_stream(std::size_t which, std::size_t ticks) {
  auto trajectory = std::make_shared<CircleTrajectory>(
      Position{0.09, 0.0, -0.11}, 0.010 + 0.0005 * static_cast<double>(which), 2.5, 1.0e9);
  MasterConsole console(std::move(trajectory), PedalSchedule::hold_from(0.02));
  std::vector<ItpBytes> out;
  out.reserve(ticks);
  for (std::size_t t = 0; t < ticks; ++t) out.push_back(encode_itp(console.tick()));
  return out;
}

struct EndpointOutcome {
  std::uint64_t accepted = 0;
  std::uint64_t ticks = 0;
  std::uint64_t alarms = 0;
  std::uint64_t blocked = 0;
  std::uint64_t digest = 0;

  friend bool operator==(const EndpointOutcome&, const EndpointOutcome&) = default;
};

std::map<std::string, EndpointOutcome> run_sharded(std::size_t shards, bool threaded,
                                                   const std::vector<std::vector<ItpBytes>>& streams,
                                                   std::size_t rx_batch = 64) {
  LoopbackTransport transport;
  GatewayConfig cfg;
  cfg.shards = shards;
  cfg.threaded = threaded;
  cfg.idle_timeout_ms = 1u << 30;
  cfg.rx_batch = rx_batch;
  TeleopGateway gateway(cfg, transport);
  // Interleave round-robin across endpoints, as concurrent consoles would.
  const std::size_t ticks = streams.front().size();
  for (std::size_t t = 0; t < ticks; ++t) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      inject(transport, ep(static_cast<std::uint16_t>(1000 + s)), streams[s][t]);
    }
  }
  pump_all(gateway, transport, 1);
  std::map<std::string, EndpointOutcome> out;
  for (const SessionStats& s : gateway.sessions()) {
    out[s.endpoint.to_string()] = EndpointOutcome{s.counters.accepted, s.shard.ticks,
                                                  s.shard.alarms, s.shard.blocked, s.shard.digest};
  }
  gateway.shutdown();
  return out;
}

TEST(Gateway, VerdictStreamsInvariantUnderShardCount) {
  std::vector<std::vector<ItpBytes>> streams;
  for (std::size_t s = 0; s < 6; ++s) streams.push_back(console_stream(s, 400));

  const auto inline_1 = run_sharded(1, false, streams);
  const auto threaded_2 = run_sharded(2, true, streams);
  const auto threaded_4 = run_sharded(4, true, streams);

  ASSERT_EQ(inline_1.size(), 6u);
  EXPECT_EQ(inline_1, threaded_2);
  EXPECT_EQ(inline_1, threaded_4);
  for (const auto& [endpoint, outcome] : inline_1) {
    EXPECT_EQ(outcome.accepted, 400u) << endpoint;
    EXPECT_EQ(outcome.ticks, 400u) << endpoint;
    EXPECT_NE(outcome.digest, 0u) << endpoint;
  }
  // Six distinct trajectories: not all verdict digests can collide.
  std::map<std::uint64_t, int> digests;
  for (const auto& [endpoint, outcome] : inline_1) ++digests[outcome.digest];
  EXPECT_GT(digests.size(), 1u);
}

TEST(Gateway, VerdictStreamsInvariantUnderBatchAndShardMatrix) {
  std::vector<std::vector<ItpBytes>> streams;
  for (std::size_t s = 0; s < 4; ++s) streams.push_back(console_stream(s, 200));

  // Reference: inline, single shard, one datagram per poll_batch().
  const auto reference = run_sharded(1, false, streams, 1);
  ASSERT_EQ(reference.size(), 4u);
  for (const auto& [endpoint, outcome] : reference) {
    EXPECT_EQ(outcome.accepted, 200u) << endpoint;
    EXPECT_NE(outcome.digest, 0u) << endpoint;
  }

  // The full ingest matrix: verdict digests and every per-session
  // counter must be byte-identical at any shard count x any batch size,
  // threaded or inline.
  for (const std::size_t shards : {1u, 2u, 4u}) {
    for (const std::size_t batch : {1u, 8u, 64u}) {
      EXPECT_EQ(reference, run_sharded(shards, true, streams, batch))
          << "shards=" << shards << " rx_batch=" << batch << " threaded";
      EXPECT_EQ(reference, run_sharded(shards, false, streams, batch))
          << "shards=" << shards << " rx_batch=" << batch << " inline";
    }
  }
}

// --- streaming calibration: drift alarms + cohort sketch -------------------

TEST(Gateway, DriftAlarmsLatchCountAndEmitEvents) {
  std::vector<std::vector<ItpBytes>> streams;
  for (std::size_t s = 0; s < 3; ++s) streams.push_back(console_stream(s, 300));

  LoopbackTransport transport;
  obs::EventLog events;
  GatewayConfig cfg = inline_config();
  cfg.calibration.enabled = true;
  // A committed baseline no live traffic can satisfy: every session must
  // drift as soon as it clears the sample gate.
  cfg.calibration.committed.motor_vel = Vec3::filled(1.0e-12);
  cfg.calibration.committed.motor_acc = Vec3::filled(1.0e-12);
  cfg.calibration.committed.joint_vel = Vec3::filled(1.0e-12);
  cfg.calibration.min_samples = 16;
  cfg.events = &events;
  TeleopGateway gateway(cfg, transport);

  for (std::size_t t = 0; t < streams.front().size(); ++t) {
    for (std::size_t s = 0; s < streams.size(); ++s) {
      inject(transport, ep(static_cast<std::uint16_t>(2000 + s)), streams[s][t]);
    }
  }
  pump_all(gateway, transport, 1);
  (void)gateway.scan_drift_now(2);

  // Each session alarms exactly once (latched), however many scans ran.
  EXPECT_EQ(gateway.scan_drift_now(3), 0u);
  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.drift_alarms, 3u);
  EXPECT_GT(stats.drift_checks, 0u);
  ASSERT_EQ(events.size(), 3u);
  for (const std::string& line : events.lines()) {
    EXPECT_NE(line.find("\"kind\": \"cal_drift\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"ratio\""), std::string::npos) << line;
  }
  gateway.shutdown();
}

TEST(Gateway, CohortSketchInvariantUnderShardCount) {
  std::vector<std::vector<ItpBytes>> streams;
  for (std::size_t s = 0; s < 5; ++s) streams.push_back(console_stream(s, 250));

  const auto cohort_digest = [&](std::size_t shards) {
    LoopbackTransport transport;
    GatewayConfig cfg = inline_config();
    cfg.shards = shards;
    cfg.calibration.enabled = true;
    // Generous baseline: no drift, we only exercise the sketches.
    cfg.calibration.committed.motor_vel = Vec3::filled(1.0e12);
    cfg.calibration.committed.motor_acc = Vec3::filled(1.0e12);
    cfg.calibration.committed.joint_vel = Vec3::filled(1.0e12);
    TeleopGateway gateway(cfg, transport);
    for (std::size_t t = 0; t < streams.front().size(); ++t) {
      for (std::size_t s = 0; s < streams.size(); ++s) {
        inject(transport, ep(static_cast<std::uint16_t>(3000 + s)), streams[s][t]);
      }
    }
    pump_all(gateway, transport, 1);
    const Result<ThresholdSketch> cohort = gateway.cohort_sketch();
    gateway.shutdown();
    return cohort;
  };

  const Result<ThresholdSketch> one = cohort_digest(1);
  const Result<ThresholdSketch> three = cohort_digest(3);
  const Result<ThresholdSketch> five = cohort_digest(5);
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(five.ok());
  EXPECT_GT(one.value().count(), 0u);
  EXPECT_EQ(one.value().digest(), three.value().digest());
  EXPECT_EQ(one.value().digest(), five.value().digest());
}

TEST(Gateway, CohortSketchNotReadyWhenCalibrationOff) {
  LoopbackTransport transport;
  TeleopGateway gateway(inline_config(), transport);
  inject(transport, ep(4000), packet_with_sequence(1));
  pump_all(gateway, transport, 1);
  EXPECT_EQ(gateway.cohort_sketch().error().code(), ErrorCode::kNotReady);
  gateway.shutdown();
}

// --- threaded pump/stats concurrency (TSan coverage) -----------------------

TEST(Gateway, ConcurrentInjectPumpAndSnapshot) {
  LoopbackTransport transport;
  GatewayConfig cfg;
  cfg.shards = 2;
  cfg.threaded = true;
  cfg.idle_timeout_ms = 1u << 30;
  TeleopGateway gateway(cfg, transport);

  std::atomic<bool> stop{false};
  std::thread injector([&] {
    for (std::uint32_t s = 1; s <= 300; ++s) {
      for (std::uint16_t e = 1; e <= 4; ++e) inject(transport, ep(e), packet_with_sequence(s));
    }
  });
  std::thread reader([&] {
    while (!stop.load()) {
      (void)gateway.stats();
      (void)gateway.sessions();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::uint64_t now_ms = 1;
  injector.join();
  while (transport.pending() > 0) (void)gateway.pump(now_ms);
  gateway.drain();
  stop.store(true);
  reader.join();

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 1200u);
  EXPECT_EQ(stats.backpressure_dropped, 0u);
  std::uint64_t total_ticks = 0;
  for (const SessionStats& s : gateway.sessions()) total_ticks += s.shard.ticks;
  EXPECT_EQ(total_ticks, 1200u);
  gateway.shutdown();
}

// --- real socket smoke -----------------------------------------------------

TEST(GatewaySocket, RealUdpLoopbackSmoke) {
  UdpSocketConfig sc;
  sc.bind_address = "127.0.0.1";
  sc.port = 0;
  UdpSocketTransport transport(sc);
  ASSERT_GT(transport.bound_port(), 0);

  GatewayConfig cfg;
  cfg.shards = 2;
  cfg.threaded = true;
  TeleopGateway gateway(cfg, transport);

  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(transport.bound_port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);

  constexpr std::uint32_t kPackets = 20;
  for (std::uint32_t s = 1; s <= kPackets; ++s) {
    const ItpBytes bytes = packet_with_sequence(s);
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }
  // One oversized datagram: dropped at the transport, never reaches ingest.
  const std::vector<std::uint8_t> oversized(100, 0xab);
  ASSERT_EQ(::send(fd, oversized.data(), oversized.size(), 0),
            static_cast<ssize_t>(oversized.size()));
  ::close(fd);

  // Loopback delivery is fast but asynchronous: pump with a deadline.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::uint64_t now_ms = 1;
  while (gateway.stats().accepted < kPackets && std::chrono::steady_clock::now() < deadline) {
    if (gateway.pump(now_ms) == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gateway.drain();

  const GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, kPackets);
  EXPECT_EQ(stats.sessions_opened, 1u);
  EXPECT_EQ(transport.oversize_datagrams(), 1u);
  const auto sessions = gateway.sessions();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].shard.ticks, kPackets);
  gateway.shutdown();
}

}  // namespace
}  // namespace rg::svc
