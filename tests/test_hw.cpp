// Unit tests for the hardware module: USB packet codec (including the
// unverified-checksum vulnerability), PLC watchdog, motor channels, board.
#include <gtest/gtest.h>

#include "hw/motor_controller.hpp"
#include "hw/plc.hpp"
#include "hw/usb_board.hpp"
#include "hw/usb_packet.hpp"

namespace rg {
namespace {

// --- Packet codec -------------------------------------------------------------

CommandPacket sample_command() {
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.watchdog_bit = true;
  pkt.dac = {100, -200, 3000, -4000, 0, 32767, -32768, 7};
  return pkt;
}

TEST(UsbPacket, CommandRoundTrip) {
  const CommandPacket pkt = sample_command();
  const CommandBytes bytes = encode_command(pkt);
  const auto decoded = decode_command(bytes, /*verify_checksum=*/true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), pkt);
}

TEST(UsbPacket, CommandByte0EncodesStateAndWatchdog) {
  CommandPacket pkt = sample_command();
  pkt.watchdog_bit = false;
  EXPECT_EQ(encode_command(pkt)[0], 0x0F);
  pkt.watchdog_bit = true;
  EXPECT_EQ(encode_command(pkt)[0], 0x1F);  // the toggling Fig-5 pattern
}

TEST(UsbPacket, CommandWrongSizeRejected) {
  const std::vector<std::uint8_t> short_pkt(5, 0);
  EXPECT_FALSE(decode_command(short_pkt).ok());
}

TEST(UsbPacket, CommandUnknownStateRejected) {
  CommandBytes bytes = encode_command(sample_command());
  bytes[0] = 0x05;  // not a valid state nibble
  EXPECT_FALSE(decode_command(bytes).ok());
}

TEST(UsbPacket, ChecksumDetectsCorruptionWhenVerified) {
  CommandBytes bytes = encode_command(sample_command());
  bytes[4] ^= 0xFF;
  const auto strict = decode_command(bytes, /*verify_checksum=*/true);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.error().code(), ErrorCode::kChecksumMismatch);
}

TEST(UsbPacket, BoardModeIgnoresCorruption) {
  // THE vulnerability: with verify_checksum=false (how the USB board
  // behaves) the same corrupted packet decodes fine.
  CommandBytes bytes = encode_command(sample_command());
  bytes[4] ^= 0xFF;
  const auto lax = decode_command(bytes, /*verify_checksum=*/false);
  ASSERT_TRUE(lax.ok());
  EXPECT_NE(lax.value().dac[1], sample_command().dac[1]);
}

TEST(UsbPacket, FeedbackRoundTrip) {
  FeedbackPacket pkt;
  pkt.state = RobotState::kInit;
  pkt.brakes_engaged = false;
  pkt.encoders = {1, -1, 1000000, -1000000, 0, 2147483647, -2147483647 - 1, 42};
  const FeedbackBytes bytes = encode_feedback(pkt);
  const auto decoded = decode_feedback(bytes, /*verify_checksum=*/true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), pkt);
}

TEST(UsbPacket, FeedbackChecksumSemantics) {
  FeedbackPacket pkt;
  pkt.state = RobotState::kPedalUp;
  FeedbackBytes bytes = encode_feedback(pkt);
  bytes[10] ^= 0x01;
  EXPECT_FALSE(decode_feedback(bytes, true).ok());
  EXPECT_TRUE(decode_feedback(bytes, false).ok());
}

TEST(UsbPacket, XorChecksumBasics) {
  const std::vector<std::uint8_t> data{0x01, 0x02, 0x04};
  EXPECT_EQ(xor_checksum(data), 0x07);
  EXPECT_EQ(xor_checksum(std::span<const std::uint8_t>{}), 0x00);
}

// Parameterized: every state round-trips through both packet kinds.
class PacketStateRoundTrip : public ::testing::TestWithParam<RobotState> {};

TEST_P(PacketStateRoundTrip, Command) {
  CommandPacket pkt;
  pkt.state = GetParam();
  const auto decoded = decode_command(encode_command(pkt), true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, GetParam());
}

TEST_P(PacketStateRoundTrip, Feedback) {
  FeedbackPacket pkt;
  pkt.state = GetParam();
  const auto decoded = decode_feedback(encode_feedback(pkt), true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStates, PacketStateRoundTrip,
                         ::testing::Values(RobotState::kEStop, RobotState::kInit,
                                           RobotState::kPedalUp, RobotState::kPedalDown));

// --- PLC ------------------------------------------------------------------------

TEST(Plc, WatchdogToggleKeepsAlive) {
  Plc plc(PlcConfig{.watchdog_timeout_ticks = 5});
  bool bit = false;
  for (int i = 0; i < 100; ++i) {
    plc.on_command_byte0(bit, RobotState::kPedalDown);
    bit = !bit;
    plc.tick();
    EXPECT_FALSE(plc.estop_latched()) << "tick " << i;
  }
}

TEST(Plc, FrozenWatchdogLatchesEStop) {
  Plc plc(PlcConfig{.watchdog_timeout_ticks = 5});
  for (int i = 0; i < 3; ++i) {
    plc.on_command_byte0(i % 2 == 0, RobotState::kPedalDown);
    plc.tick();
  }
  // Watchdog stops toggling (software detected something unsafe).
  for (int i = 0; i < 6; ++i) {
    plc.on_command_byte0(true, RobotState::kPedalDown);
    plc.tick();
  }
  EXPECT_TRUE(plc.estop_latched());
  EXPECT_TRUE(plc.brakes_engaged());
  EXPECT_EQ(plc.reported_state(), RobotState::kEStop);
}

TEST(Plc, NoPacketsNoLatch) {
  Plc plc(PlcConfig{.watchdog_timeout_ticks = 3});
  for (int i = 0; i < 100; ++i) plc.tick();
  EXPECT_FALSE(plc.estop_latched());  // nothing to monitor yet
}

TEST(Plc, MissingPacketsAfterTrafficLatch) {
  Plc plc(PlcConfig{.watchdog_timeout_ticks = 3});
  plc.on_command_byte0(false, RobotState::kPedalDown);
  for (int i = 0; i < 5; ++i) plc.tick();  // silence on the USB bus
  EXPECT_TRUE(plc.estop_latched());
}

TEST(Plc, EstopButtonImmediate) {
  Plc plc;
  plc.press_estop();
  EXPECT_TRUE(plc.estop_latched());
  plc.press_start();
  EXPECT_FALSE(plc.estop_latched());
}

TEST(Plc, BrakesFollowState) {
  Plc plc;
  plc.on_command_byte0(false, RobotState::kPedalUp);
  EXPECT_TRUE(plc.brakes_engaged());
  plc.on_command_byte0(true, RobotState::kPedalDown);
  EXPECT_FALSE(plc.brakes_engaged());
  plc.on_command_byte0(false, RobotState::kInit);
  EXPECT_FALSE(plc.brakes_engaged());  // homing moves the arm
  plc.on_command_byte0(true, RobotState::kEStop);
  EXPECT_TRUE(plc.brakes_engaged());
}

TEST(Plc, EstopOverridesBrakeRelease) {
  Plc plc;
  plc.on_command_byte0(false, RobotState::kPedalDown);
  plc.press_estop();
  EXPECT_TRUE(plc.brakes_engaged());
}

// --- MotorChannel ----------------------------------------------------------------

TEST(MotorChannel, DacCurrentRoundTrip) {
  const MotorChannel ch;
  for (double amps : {-9.0, -1.0, 0.0, 0.5, 7.25}) {
    const std::int16_t dac = ch.dac_from_current(amps);
    EXPECT_NEAR(ch.current_from_dac(dac), amps, 1e-3);
  }
}

TEST(MotorChannel, DacSaturates) {
  const MotorChannel ch;  // full scale 10 A
  EXPECT_EQ(ch.dac_from_current(100.0), 32767);
  EXPECT_EQ(ch.dac_from_current(-100.0), -32768);
}

TEST(MotorChannel, EncoderQuantization) {
  const MotorChannel ch;
  const double angle = 1.2345;
  const std::int32_t counts = ch.counts_from_angle(angle);
  const double back = ch.angle_from_counts(counts);
  // Quantization error bounded by half a count.
  EXPECT_LT(std::abs(back - angle), 0.5 / ch.config().counts_per_rad + 1e-12);
}

TEST(MotorChannel, ValidatesConfig) {
  MotorChannelConfig cfg;
  cfg.full_scale_current = 0.0;
  EXPECT_THROW(MotorChannel{cfg}, std::invalid_argument);
  cfg = MotorChannelConfig{};
  cfg.counts_per_rad = -1.0;
  EXPECT_THROW(MotorChannel{cfg}, std::invalid_argument);
}

// --- UsbBoard ---------------------------------------------------------------------

TEST(UsbBoard, LatchesCommandAndNotifiesPlc) {
  Plc plc;
  UsbBoard board(plc);
  CommandPacket pkt = sample_command();
  const CommandBytes bytes = encode_command(pkt);
  ASSERT_TRUE(board.receive_command(bytes).ok());
  EXPECT_TRUE(board.has_command());
  EXPECT_EQ(board.last_command(), pkt);
  EXPECT_EQ(plc.reported_state(), RobotState::kPedalDown);
}

TEST(UsbBoard, AcceptsCorruptedPayload) {
  // The board trusts whatever bytes arrive — scenario B's entry point.
  Plc plc;
  UsbBoard board(plc);
  CommandBytes bytes = encode_command(sample_command());
  bytes[3] = 0xAB;  // corrupt a DAC byte, checksum now stale
  EXPECT_TRUE(board.receive_command(bytes).ok());
}

TEST(UsbBoard, RejectsUndecodablePacket) {
  Plc plc;
  UsbBoard board(plc);
  std::vector<std::uint8_t> garbage(kCommandPacketSize, 0x00);
  garbage[0] = 0x09;  // invalid state nibble
  EXPECT_FALSE(board.receive_command(garbage).ok());
  EXPECT_FALSE(board.has_command());
}

TEST(UsbBoard, CurrentsZeroBeforeFirstCommand) {
  Plc plc;
  UsbBoard board(plc);
  EXPECT_EQ(board.modeled_currents(), Vec3::zero());
}

TEST(UsbBoard, CurrentsFollowDac) {
  Plc plc;
  UsbBoard board(plc);
  CommandPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.dac[0] = 32767;
  ASSERT_TRUE(board.receive_command(encode_command(pkt)).ok());
  EXPECT_NEAR(board.modeled_currents()[0], 10.0, 1e-3);
}

TEST(UsbBoard, EncoderLatchAndFeedback) {
  Plc plc;
  UsbBoard board(plc);
  board.latch_encoders(MotorVector{1.0, -2.0, 3.0});
  EXPECT_NEAR(board.encoder_angle(0), 1.0, 0.01);
  EXPECT_NEAR(board.encoder_angle(1), -2.0, 0.01);

  const FeedbackBytes fb = board.build_feedback();
  const auto decoded = decode_feedback(fb, true);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().state, RobotState::kEStop);  // no commands yet
  EXPECT_TRUE(decoded.value().brakes_engaged);
  EXPECT_NE(decoded.value().encoders[2], 0);
}

TEST(UsbBoard, OutOfRangeEncoderChannelReadsZero) {
  Plc plc;
  UsbBoard board(plc);
  EXPECT_DOUBLE_EQ(board.encoder_angle(99), 0.0);
}

}  // namespace
}  // namespace rg
