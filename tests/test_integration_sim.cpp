// Integration tests: the full closed loop (console -> control -> hw ->
// plant) must home, enter teleoperation, and track the surgeon's
// trajectory without tripping any safety mechanism when no attack is
// installed.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {
namespace {

SessionParams quick_session(std::uint64_t seed) {
  SessionParams p;
  p.seed = seed;
  p.duration_sec = 4.0;
  return p;
}

TEST(IntegrationSim, HomingReachesPedalUpWithoutFaults) {
  SimConfig cfg = make_session(quick_session(3), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.run(1.0);  // homing takes 0.8 s
  EXPECT_EQ(sim.control().state(), RobotState::kPedalUp);
  EXPECT_FALSE(sim.control().safety_fault_latched());
  EXPECT_FALSE(sim.plc().estop_latched());

  // Homing should have parked the arm near the workspace midpoint.
  const JointVector home = sim.control().config().limits.midpoint();
  const JointVector q = sim.plant().joint_positions();
  EXPECT_NEAR(q[0], home[0], 0.02);
  EXPECT_NEAR(q[1], home[1], 0.02);
  EXPECT_NEAR(q[2], home[2], 0.005);
}

TEST(IntegrationSim, PedalDownEngagesAndReleasesBrakes) {
  SimConfig cfg = make_session(quick_session(4), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.run(1.1);
  EXPECT_TRUE(sim.plc().brakes_engaged());  // pedal still up
  sim.run(0.3);                             // pedal goes down at 1.2 s
  EXPECT_EQ(sim.control().state(), RobotState::kPedalDown);
  EXPECT_FALSE(sim.plc().brakes_engaged());
}

TEST(IntegrationSim, FaultFreeRunTracksTrajectory) {
  SimConfig cfg = make_session(quick_session(5), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.run(4.0);

  EXPECT_FALSE(sim.control().safety_fault_latched());
  EXPECT_FALSE(sim.plc().estop_latched());
  EXPECT_FALSE(sim.plant().cable_snapped());
  EXPECT_EQ(sim.control().state(), RobotState::kPedalDown);

  // Ground truth end effector should be close to the commanded desired
  // pose (sub-millimetre tracking is what RAVEN achieves).
  const Position desired = sim.control().debug().ee_desired;
  const Position actual = sim.plant().end_effector();
  EXPECT_LT(distance(desired, actual), 2.0e-3)
      << "desired (" << desired[0] << "," << desired[1] << "," << desired[2] << ") actual ("
      << actual[0] << "," << actual[1] << "," << actual[2] << ")";
}

TEST(IntegrationSim, FaultFreeRunHasNoAdverseImpact) {
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    SimConfig cfg = make_session(quick_session(seed), std::nullopt, MitigationMode::kObserveOnly);
    SurgicalSim sim(std::move(cfg));
    sim.run(4.0);
    EXPECT_FALSE(sim.outcome().adverse_impact()) << "seed " << seed;
    EXPECT_LT(sim.outcome().max_ee_jump_1ms, 1.0e-3) << "seed " << seed;
  }
}

TEST(IntegrationSim, ToleratesLossyNetwork) {
  // Prior-work threat (Bonaci et al.): datagram loss degrades teleop but
  // must not fault the stock system or fake an abrupt jump.
  SimConfig cfg = make_session(quick_session(21), std::nullopt, MitigationMode::kObserveOnly);
  cfg.network.loss_probability = 0.10;
  cfg.network.seed = 77;
  SurgicalSim sim(std::move(cfg));
  sim.run(4.0);
  EXPECT_FALSE(sim.control().safety_fault_latched());
  EXPECT_FALSE(sim.outcome().adverse_impact());
}

TEST(IntegrationSim, EncoderCorruptionCausesJump) {
  // Table I row 4 (read path): offsetting an encoder channel makes the
  // PID "correct" a phantom error and the real arm jumps.
  AttackSpec spec;
  spec.variant = AttackVariant::kEncoderCorruption;
  spec.magnitude = 800;  // counts
  spec.duration_packets = 128;
  spec.delay_packets = 2600;  // mid-teleoperation
  const AttackRunResult r = run_attack_session(quick_session(22), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_GT(r.injections, 0u);
  // Table I's reported impact class is "abrupt jump / unwanted E-STOP":
  // a large phantom error makes the PID saturate, which either jumps the
  // arm or trips the DAC check (and often both) — never "no effect".
  EXPECT_TRUE(r.impact() || r.outcome.raven_detected());
  EXPECT_GT(r.outcome.max_ee_jump_window, 2.0e-4);  // visible unintended motion
}

TEST(IntegrationSim, StateSpoofHaltsTheRobot) {
  // Table I row 3: spoofing the PLC state echo desynchronizes hardware
  // and software; the cross-check ends the session in a halt, with no
  // physical jump (the "homing failure" impact class).
  AttackSpec spec;
  spec.variant = AttackVariant::kStateSpoof;
  spec.duration_packets = 0;
  const AttackRunResult r = run_attack_session(quick_session(23), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_TRUE(r.outcome.raven_detected());
  EXPECT_FALSE(r.impact());
}

TEST(IntegrationSim, TrajectoryHijackMovesRobotOffOperatorPath) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTrajectoryHijack;
  spec.magnitude = 0.008;  // 8 mm circle
  spec.duration_packets = 1500;
  spec.delay_packets = 200;
  const AttackRunResult r = run_attack_session(quick_session(24), spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_GT(r.injections, 500u);
  // The robot physically executed motion the operator never commanded.
  EXPECT_GT(r.outcome.max_ee_jump_window, 1.0e-3);
}

TEST(IntegrationSim, DetectionObserverSeesEveryScreenedCommand) {
  DetectionThresholds huge;
  huge.motor_vel = huge.motor_acc = huge.joint_vel = Vec3::filled(1e18);
  SessionParams p = quick_session(25);
  SimConfig cfg = make_session(p, huge, MitigationMode::kObserveOnly);
  cfg.detection->detector.ee_jump_limit = 0.0;
  SurgicalSim sim(std::move(cfg));
  std::size_t observed = 0;
  sim.set_detection_observer([&observed](const DetectionPipeline::Outcome&) { ++observed; });
  sim.run(2.0);
  EXPECT_EQ(observed, 2000u);  // one per tick once the board path is live
}

}  // namespace
}  // namespace rg
