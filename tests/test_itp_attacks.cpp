// Unit tests for the console-path (scenario A) and read-path (feedback)
// attack wrappers.
#include <gtest/gtest.h>

#include "attack/feedback_attack.hpp"
#include "attack/itp_injection.hpp"
#include "hw/usb_packet.hpp"
#include "net/itp_packet.hpp"

namespace rg {
namespace {

ItpBytes pedal_packet(Vec3 incr = Vec3::zero(), bool pedal = true) {
  ItpPacket pkt;
  pkt.pedal_down = pedal;
  pkt.pos_increment = incr;
  return encode_itp(pkt);
}

// --- ItpInjectionWrapper ------------------------------------------------------------

TEST(ItpInjection, InflateAddsIncrement) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kInflateIncrement;
  cfg.increment_magnitude = 1e-3;
  cfg.increment_direction = Vec3{1.0, 0.0, 0.0};
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes bytes = pedal_packet(Vec3{1e-5, 0.0, 0.0});
  EXPECT_TRUE(wrapper.on_packet(bytes, 0));
  const auto decoded = decode_itp(bytes, true);  // checksum re-sealed!
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(decoded.value().pos_increment[0], 1e-3 + 1e-5, 1e-9);
  EXPECT_EQ(wrapper.injections(), 1u);
}

TEST(ItpInjection, PreservesLegitimateFormat) {
  // The paper's attacks preserve format/syntax: after mutation the packet
  // still passes the software's checksum verification.
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kHijack;
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes bytes = pedal_packet();
  (void)wrapper.on_packet(bytes, 0);
  EXPECT_TRUE(decode_itp(bytes, true).ok());
}

TEST(ItpInjection, IgnoresPedalUpTraffic) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kInflateIncrement;
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes bytes = pedal_packet(Vec3::zero(), /*pedal=*/false);
  const ItpBytes before = bytes;
  EXPECT_TRUE(wrapper.on_packet(bytes, 0));
  EXPECT_EQ(bytes, before);
  EXPECT_EQ(wrapper.injections(), 0u);
}

TEST(ItpInjection, RandomDirectionIsUnitAndStable) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kInflateIncrement;
  cfg.increment_magnitude = 1e-3;
  cfg.seed = 4;  // direction zero => random unit chosen once
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes a = pedal_packet();
  ItpBytes b = pedal_packet();
  (void)wrapper.on_packet(a, 0);
  (void)wrapper.on_packet(b, 1);
  const Vec3 da = decode_itp(a, true).value().pos_increment;
  const Vec3 db = decode_itp(b, true).value().pos_increment;
  EXPECT_NEAR(da.norm(), 1e-3, 1e-6);
  EXPECT_NEAR(distance(da, db), 0.0, 1e-9);  // same direction each packet
}

TEST(ItpInjection, HijackReplacesOperatorMotion) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kHijack;
  cfg.hijack_radius = 0.01;
  cfg.hijack_period = 1.0;
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes bytes = pedal_packet(Vec3{5e-4, 5e-4, 5e-4});
  (void)wrapper.on_packet(bytes, 0);
  const Vec3 incr = decode_itp(bytes, true).value().pos_increment;
  // Operator motion gone; replaced by the circle's tangent step.
  EXPECT_NEAR(incr[2], 0.0, 1e-12);
  EXPECT_NE(incr[1], 5e-4);
}

TEST(ItpInjection, DropSuppressesDelivery) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kDropPackets;
  cfg.duration_packets = 2;
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes bytes = pedal_packet();
  EXPECT_FALSE(wrapper.on_packet(bytes, 0));
  EXPECT_FALSE(wrapper.on_packet(bytes, 1));
  EXPECT_TRUE(wrapper.on_packet(bytes, 2));  // window over
  EXPECT_EQ(wrapper.injections(), 2u);
}

TEST(ItpInjection, DelayWindowCountsPedalPacketsOnly) {
  ItpInjectionConfig cfg;
  cfg.mode = ItpInjectionConfig::Mode::kInflateIncrement;
  cfg.increment_magnitude = 1e-3;
  cfg.delay_packets = 2;
  ItpInjectionWrapper wrapper(cfg);
  ItpBytes up = pedal_packet(Vec3::zero(), false);
  (void)wrapper.on_packet(up, 0);  // must not consume the delay budget
  ItpBytes d1 = pedal_packet();
  ItpBytes d2 = pedal_packet();
  ItpBytes d3 = pedal_packet();
  (void)wrapper.on_packet(d1, 1);
  (void)wrapper.on_packet(d2, 2);
  (void)wrapper.on_packet(d3, 3);
  EXPECT_EQ(wrapper.injections(), 1u);
  ASSERT_TRUE(wrapper.first_injection_tick().has_value());
  EXPECT_EQ(*wrapper.first_injection_tick(), 3u);
}

TEST(ItpInjection, NonItpTrafficUntouched) {
  ItpInjectionConfig cfg;
  ItpInjectionWrapper wrapper(cfg);
  std::array<std::uint8_t, 5> not_itp{1, 2, 3, 4, 5};
  const auto before = not_itp;
  EXPECT_TRUE(wrapper.on_packet(not_itp, 0));
  EXPECT_EQ(not_itp, before);
}

// --- FeedbackAttackWrapper -----------------------------------------------------------

FeedbackBytes feedback_packet(std::int32_t enc1 = 1000) {
  FeedbackPacket pkt;
  pkt.state = RobotState::kPedalDown;
  pkt.brakes_engaged = false;
  pkt.encoders[1] = enc1;
  return encode_feedback(pkt);
}

TEST(FeedbackAttack, EncoderOffsetApplied) {
  FeedbackAttackConfig cfg;
  cfg.mode = FeedbackAttackConfig::Mode::kEncoderOffset;
  cfg.target_channel = 1;
  cfg.count_offset = 500;
  FeedbackAttackWrapper wrapper(cfg);
  FeedbackBytes bytes = feedback_packet(1000);
  EXPECT_TRUE(wrapper.on_packet(bytes, 0));
  const auto decoded = decode_feedback(bytes, true);  // checksum re-sealed
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().encoders[1], 1500);
}

TEST(FeedbackAttack, StateSpoofRewritesState) {
  FeedbackAttackConfig cfg;
  cfg.mode = FeedbackAttackConfig::Mode::kStateSpoof;
  cfg.spoofed_state = RobotState::kEStop;
  FeedbackAttackWrapper wrapper(cfg);
  FeedbackBytes bytes = feedback_packet();
  (void)wrapper.on_packet(bytes, 0);
  EXPECT_EQ(decode_feedback(bytes, true).value().state, RobotState::kEStop);
}

TEST(FeedbackAttack, DelayDurationWindows) {
  FeedbackAttackConfig cfg;
  cfg.mode = FeedbackAttackConfig::Mode::kEncoderOffset;
  cfg.target_channel = 1;
  cfg.count_offset = 100;
  cfg.delay_packets = 1;
  cfg.duration_packets = 1;
  FeedbackAttackWrapper wrapper(cfg);
  FeedbackBytes a = feedback_packet(0);
  FeedbackBytes b = feedback_packet(0);
  FeedbackBytes c = feedback_packet(0);
  (void)wrapper.on_packet(a, 0);
  (void)wrapper.on_packet(b, 1);
  (void)wrapper.on_packet(c, 2);
  EXPECT_EQ(decode_feedback(a, true).value().encoders[1], 0);
  EXPECT_EQ(decode_feedback(b, true).value().encoders[1], 100);
  EXPECT_EQ(decode_feedback(c, true).value().encoders[1], 0);
  EXPECT_EQ(wrapper.injections(), 1u);
}

TEST(FeedbackAttack, GarbageUntouched) {
  FeedbackAttackWrapper wrapper(FeedbackAttackConfig{});
  std::array<std::uint8_t, 4> garbage{1, 2, 3, 4};
  const auto before = garbage;
  EXPECT_TRUE(wrapper.on_packet(garbage, 0));
  EXPECT_EQ(garbage, before);
}

}  // namespace
}  // namespace rg
