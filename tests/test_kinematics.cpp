// Unit + property tests for kinematics: FK/IK consistency, Jacobian,
// joint limits, cable coupling, math hooks.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "kinematics/coupling.hpp"
#include "kinematics/joint_limits.hpp"
#include "kinematics/raven_kinematics.hpp"

namespace rg {
namespace {

// --- JointLimits ------------------------------------------------------------

TEST(JointLimits, ContainsAndClamp) {
  const JointLimits lim = JointLimits::raven_defaults();
  EXPECT_TRUE(lim.contains(lim.midpoint()));
  JointVector q = lim.midpoint();
  q[0] = 10.0;
  EXPECT_FALSE(lim.contains(q));
  const JointVector clamped = lim.clamp(q);
  EXPECT_TRUE(lim.contains(clamped));
  EXPECT_DOUBLE_EQ(clamped[0], lim.joint(0).max);
}

TEST(JointLimits, SpanAndMidpoint) {
  constexpr JointLimit lim{-1.0, 3.0};
  EXPECT_DOUBLE_EQ(lim.span(), 4.0);
  EXPECT_DOUBLE_EQ(lim.midpoint(), 1.0);
  EXPECT_TRUE(lim.contains(3.0));
  EXPECT_FALSE(lim.contains(3.0001));
}

TEST(JointLimits, DefaultsExcludePolarSingularity) {
  const JointLimits lim = JointLimits::raven_defaults();
  EXPECT_GT(lim.joint(1).min, 0.0);
  EXPECT_LT(lim.joint(1).max, kPi);
}

// --- Forward / inverse kinematics --------------------------------------------

TEST(Kinematics, ForwardAtMidpoint) {
  const RavenKinematics kin;
  const JointVector q = kin.limits().midpoint();
  const Position p = kin.forward(q);
  // depth equals insertion
  EXPECT_NEAR(p.norm(), q[2], 1e-12);
}

TEST(Kinematics, InverseFailsAtRcm) {
  const RavenKinematics kin;
  const auto result = kin.inverse(Position{0.0, 0.0, 0.0});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnreachable);
}

TEST(Kinematics, InverseFailsOnPolarAxis) {
  const RavenKinematics kin;
  // Straight down the polar axis: azimuth undefined.
  const auto result = kin.inverse(Position{0.0, 0.0, -0.1});
  ASSERT_FALSE(result.ok());
}

TEST(Kinematics, InverseFailsOutsideLimits) {
  const RavenKinematics kin;
  // Reachable direction but insertion beyond the 0.3 m limit.
  const auto result = kin.inverse(Position{0.5, 0.0, -0.5});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code(), ErrorCode::kUnreachable);
}

TEST(Kinematics, RcmOffsetShiftsWorkspace) {
  const Position rcm{1.0, 2.0, 3.0};
  const RavenKinematics kin(rcm);
  const JointVector q = kin.limits().midpoint();
  const Position p = kin.forward(q);
  EXPECT_NEAR(distance(p, rcm), q[2], 1e-12);
  const auto ik = kin.inverse(p);
  ASSERT_TRUE(ik.ok());
  EXPECT_NEAR(ik.value()[2], q[2], 1e-12);
}

// Property: IK(FK(q)) == q over a grid of the workspace.
class FkIkRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FkIkRoundTrip, InverseRecoversJoints) {
  const RavenKinematics kin;
  Pcg32 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    JointVector q;
    for (std::size_t j = 0; j < 3; ++j) {
      const JointLimit& lim = kin.limits().joint(j);
      // Sample strictly inside to avoid boundary-rounding rejections.
      q[j] = rng.uniform(lim.min + 0.01 * lim.span(), lim.max - 0.01 * lim.span());
    }
    const auto ik = kin.inverse(kin.forward(q));
    ASSERT_TRUE(ik.ok()) << "q = (" << q[0] << "," << q[1] << "," << q[2] << ")";
    EXPECT_NEAR(ik.value()[0], q[0], 1e-9);
    EXPECT_NEAR(ik.value()[1], q[1], 1e-9);
    EXPECT_NEAR(ik.value()[2], q[2], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FkIkRoundTrip, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// Property: analytic Jacobian matches finite differences.
class JacobianCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JacobianCheck, MatchesFiniteDifference) {
  const RavenKinematics kin;
  Pcg32 rng(GetParam());
  const double eps = 1e-7;
  for (int i = 0; i < 20; ++i) {
    JointVector q;
    for (std::size_t j = 0; j < 3; ++j) {
      const JointLimit& lim = kin.limits().joint(j);
      q[j] = rng.uniform(lim.min + 0.05 * lim.span(), lim.max - 0.05 * lim.span());
    }
    const Mat3 jac = kin.jacobian(q);
    for (std::size_t col = 0; col < 3; ++col) {
      JointVector qp = q;
      qp[col] += eps;
      const Vec3 fd = (kin.forward(qp) - kin.forward(q)) / eps;
      for (std::size_t row = 0; row < 3; ++row) {
        EXPECT_NEAR(jac(row, col), fd[row], 1e-5)
            << "row " << row << " col " << col;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JacobianCheck, ::testing::Values(10u, 11u, 12u));

TEST(Kinematics, TipSpeedMatchesNumericalDisplacement) {
  const RavenKinematics kin;
  const JointVector q = kin.limits().midpoint();
  const JointVector qdot{0.1, -0.2, 0.01};
  const double dt = 1e-7;
  const double numeric = distance(kin.forward(q + dt * qdot), kin.forward(q)) / dt;
  EXPECT_NEAR(kin.tip_speed(q, qdot), numeric, 1e-4);
}

TEST(Kinematics, MathHooksInterposition) {
  RavenKinematics kin;
  const JointVector q = kin.limits().midpoint();
  const Position honest = kin.forward(q);

  // A "malicious libm" that biases sin by a constant.
  static constexpr double kBias = 0.01;
  MathHooks evil = MathHooks::libm();
  evil.sin = [](double x) { return std::sin(x) + kBias; };
  kin.set_math_hooks(evil);
  const Position drifted = kin.forward(q);
  EXPECT_GT(distance(honest, drifted), 1e-4);

  kin.set_math_hooks(MathHooks::libm());
  EXPECT_EQ(kin.forward(q), honest);
}

// --- Cable coupling -----------------------------------------------------------

TEST(Coupling, MotorJointRoundTrip) {
  const CableCoupling coupling;
  const JointVector q{0.3, 1.2, 0.15};
  const MotorVector m = coupling.joint_to_motor(q);
  const JointVector back = coupling.motor_to_joint(m);
  EXPECT_NEAR(back[0], q[0], 1e-12);
  EXPECT_NEAR(back[1], q[1], 1e-12);
  EXPECT_NEAR(back[2], q[2], 1e-12);
}

TEST(Coupling, GearRatiosApply) {
  TransmissionParams p;
  p.elbow_shoulder_coupling = 0.0;
  p.insertion_posture_coupling = 0.0;
  const CableCoupling coupling(p);
  const JointVector q = coupling.motor_to_joint(MotorVector{p.shoulder_ratio, 0.0, 0.0});
  EXPECT_NEAR(q[0], 1.0, 1e-12);
  EXPECT_NEAR(q[1], 0.0, 1e-12);
}

TEST(Coupling, OffDiagonalCouplingVisible) {
  const CableCoupling coupling;  // default has elbow-shoulder coupling
  const JointVector q = coupling.motor_to_joint(MotorVector{1.0, 0.0, 0.0});
  EXPECT_NE(q[1], 0.0);  // shoulder motor motion leaks into elbow joint
}

TEST(Coupling, VelocityMapMatchesPositionMap) {
  const CableCoupling coupling;
  const MotorVector mvel{3.0, -2.0, 10.0};
  EXPECT_EQ(coupling.motor_to_joint_velocity(mvel), coupling.motor_to_joint(mvel));
}

TEST(Coupling, TorqueDualityConservesPower) {
  // Power balance: tau_m . omega_m == tau_j . qdot_j when qdot = C omega.
  const CableCoupling coupling;
  const Vec3 tau_j{1.5, -0.7, 20.0};
  const MotorVector omega{2.0, 3.0, -40.0};
  const JointVector qdot = coupling.motor_to_joint_velocity(omega);
  const MotorVector tau_m = coupling.joint_torque_to_motor(tau_j);
  EXPECT_NEAR(tau_m.dot(omega), tau_j.dot(qdot), 1e-9);
}

TEST(Coupling, ValidatesParams) {
  TransmissionParams p;
  p.shoulder_ratio = 0.0;
  EXPECT_THROW(CableCoupling{p}, std::invalid_argument);
  p = TransmissionParams{};
  p.elbow_shoulder_coupling = 1.0;
  EXPECT_THROW(CableCoupling{p}, std::invalid_argument);
  p = TransmissionParams{};
  p.insertion_m_per_rad = -1.0;
  EXPECT_THROW(CableCoupling{p}, std::invalid_argument);
}

}  // namespace
}  // namespace rg
