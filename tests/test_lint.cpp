// tools/rg_lint driven in-process: the fixture tree must produce exactly
// the seeded findings, and the real tree must be clean.
//
// RG_LINT_REPO_ROOT / RG_LINT_FIXTURES are absolute paths injected by
// tests/CMakeLists.txt, so the tests are independent of the ctest working
// directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

#include "lint.hpp"

namespace {

using rg::lint::Check;
using rg::lint::Finding;
using rg::lint::Options;
using rg::lint::Report;

std::map<std::string, int> count_by_class(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& f : report.findings) ++counts[rg::lint::to_string(f.check)];
  return counts;
}

TEST(Lint, FixtureTreeProducesExactlyTheSeededFindings) {
  Options options;
  options.root = RG_LINT_FIXTURES;
  const Report report = rg::lint::run(options);

  const std::map<std::string, int> expected = {
      {"alloc", 1}, {"lock", 1},   {"io", 4},     {"throw", 1},    {"block", 1},
      {"push_back", 1}, {"call", 1}, {"cast", 1}, {"metric", 3}, {"errorcode", 2},
      {"thread_role", 2}, {"nondet", 3}, {"stale_waiver", 2},
  };
  EXPECT_EQ(count_by_class(report), expected) << [&] {
    std::string all;
    for (const Finding& f : report.findings) {
      all += f.file + ":" + std::to_string(f.line) + ": [" +
             rg::lint::to_string(f.check) + "] " + f.message + "\n";
    }
    return all;
  }();
  EXPECT_EQ(report.findings.size(), 23u);
}

TEST(Lint, FixtureFindingsCarryFileAndLine) {
  Options options;
  options.root = RG_LINT_FIXTURES;
  const Report report = rg::lint::run(options);
  for (const Finding& f : report.findings) {
    EXPECT_FALSE(f.file.empty());
    EXPECT_GT(f.line, 0) << f.file << ": " << f.message;
    EXPECT_FALSE(f.message.empty());
  }
  // The propagation finding names both ends of the edge.
  const auto call = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.check == Check::kCall; });
  ASSERT_NE(call, report.findings.end());
  EXPECT_NE(call->message.find("tick"), std::string::npos);
  EXPECT_NE(call->message.find("helper_unannotated"), std::string::npos);
  // So does a thread-role finding (caller, callee, both roles).
  const auto role = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.check == Check::kThreadRole; });
  ASSERT_NE(role, report.findings.end());
  EXPECT_NE(role->message.find("pump_calls_shard"), std::string::npos);
  EXPECT_NE(role->message.find("shard_only"), std::string::npos);
  EXPECT_NE(role->message.find("RG_THREAD(shard)"), std::string::npos);
  // A nondet finding names the nondeterminism class it tripped.
  const auto nondet = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.check == Check::kNondet; });
  ASSERT_NE(nondet, report.findings.end());
  EXPECT_NE(nondet->message.find("RG_DETERMINISTIC"), std::string::npos);
  // A stale-waiver finding names the dead class so the fix is obvious.
  const auto stale = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.check == Check::kStaleWaiver; });
  ASSERT_NE(stale, report.findings.end());
  EXPECT_NE(stale->message.find("allow("), std::string::npos);
  EXPECT_NE(stale->message.find("remove it"), std::string::npos);
}

TEST(Lint, RealTreeIsClean) {
  Options options;
  options.root = RG_LINT_REPO_ROOT;
  const Report report = rg::lint::run(options);
  std::string all;
  for (const Finding& f : report.findings) {
    all += f.file + ":" + std::to_string(f.line) + ": [" +
           rg::lint::to_string(f.check) + "] " + f.message + "\n";
  }
  EXPECT_TRUE(report.findings.empty()) << all;
  // Sanity: the scan actually covered the tree and its annotations.
  EXPECT_GT(report.files_scanned, 150u);
  EXPECT_GT(report.realtime_functions, 150u);
  EXPECT_GT(report.thread_role_functions, 40u);
  EXPECT_GT(report.deterministic_functions, 20u);
}

TEST(Lint, RealTreeMetricInventoryMatchesKnownFamilies) {
  Options options;
  options.root = RG_LINT_REPO_ROOT;
  const Report report = rg::lint::run(options);
  const auto has = [&](const char* name) {
    return std::find(report.metric_names.begin(), report.metric_names.end(),
                     name) != report.metric_names.end();
  };
  EXPECT_TRUE(has("rg.span.control.tick"));
  EXPECT_TRUE(has("rg.gw.rx_packets"));
  EXPECT_TRUE(has("rg.gw.shard.*"));  // dynamic registration -> wildcard family
  EXPECT_TRUE(has("rg.pipeline.alarms"));
}

TEST(Lint, RegistryRenderIsSortedAndDeduped) {
  const std::string header = rg::lint::render_metric_registry(
      {"rg.b", "rg.a", "rg.b", "rg.c.*"});
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
  const std::size_t a = header.find("\"rg.a\"");
  const std::size_t b = header.find("\"rg.b\"");
  const std::size_t c = header.find("\"rg.c.*\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(header.find("\"rg.b\"", b + 1), std::string::npos);  // deduped
}

TEST(Lint, JsonReportCarriesSchemaCountsAndFindings) {
  Options options;
  options.root = RG_LINT_FIXTURES;
  const Report report = rg::lint::run(options);
  const std::string json = rg::lint::render_json(report);
  EXPECT_NE(json.find("\"schema\": \"rg.lint.report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"total\": 23"), std::string::npos);
  EXPECT_NE(json.find("\"thread_role\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"nondet\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"stale_waiver\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/thread_roles.cpp\""), std::string::npos);
  // Zero-filled classes appear even when clean on the fixture tree.
  EXPECT_NE(json.find("\"counts\""), std::string::npos);
}

TEST(Lint, JsonReportZeroFillsEveryClassWhenEmpty) {
  const Report empty;
  const std::string json = rg::lint::render_json(empty);
  for (const Check check : rg::lint::kAllChecks) {
    const std::string key = std::string("\"") + rg::lint::to_string(check) + "\": 0";
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("\"findings\": []"), std::string::npos);
}

class LintStaleDb : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) / "rg_lint_staledb";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src");
    write(root_ / "src/a.cpp", "int a() { return 1; }\n");
    write(root_ / "src/b.cpp", "int b() { return 2; }\n");
  }
  void TearDown() override { std::filesystem::remove_all(root_); }

  static void write(const std::filesystem::path& path, const std::string& text) {
    std::ofstream os(path);
    os << text;
  }

  void write_db(const std::string& entries) {
    write(root_ / "compile_commands.json", "[" + entries + "]\n");
  }

  [[nodiscard]] std::string entry(const std::string& rel) const {
    return "{\"directory\": \"" + root_.string() + "\", \"command\": \"c++ -c " + rel +
           "\", \"file\": \"" + (root_ / rel).string() + "\"}";
  }

  [[nodiscard]] Report run_with_db() const {
    Options options;
    options.root = root_.string();
    options.compile_commands = (root_ / "compile_commands.json").string();
    return rg::lint::run(options);
  }

  std::filesystem::path root_;
};

TEST_F(LintStaleDb, CompleteDatabaseIsAccepted) {
  write_db(entry("src/a.cpp") + ",\n" + entry("src/b.cpp"));
  const Report report = run_with_db();
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GE(report.files_scanned, 2u);
}

TEST_F(LintStaleDb, DatabaseReferencingDeletedFileDemandsRecmake) {
  write_db(entry("src/a.cpp") + ",\n" + entry("src/b.cpp") + ",\n" + entry("src/gone.cpp"));
  try {
    (void)run_with_db();
    FAIL() << "expected a stale-database error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("re-run cmake"), std::string::npos) << what;
    EXPECT_NE(what.find("gone.cpp"), std::string::npos) << what;
  }
}

TEST_F(LintStaleDb, DatabaseMissingATranslationUnitDemandsRecmake) {
  write_db(entry("src/a.cpp"));  // src/b.cpp exists on disk but is not in the db
  try {
    (void)run_with_db();
    FAIL() << "expected a stale-database error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("re-run cmake"), std::string::npos) << what;
    EXPECT_NE(what.find("src/b.cpp"), std::string::npos) << what;
  }
}

}  // namespace
