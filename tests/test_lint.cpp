// tools/rg_lint driven in-process: the fixture tree must produce exactly
// the seeded findings, and the real tree must be clean.
//
// RG_LINT_REPO_ROOT / RG_LINT_FIXTURES are absolute paths injected by
// tests/CMakeLists.txt, so the tests are independent of the ctest working
// directory.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "lint.hpp"

namespace {

using rg::lint::Check;
using rg::lint::Finding;
using rg::lint::Options;
using rg::lint::Report;

std::map<std::string, int> count_by_class(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& f : report.findings) ++counts[rg::lint::to_string(f.check)];
  return counts;
}

TEST(Lint, FixtureTreeProducesExactlyTheSeededFindings) {
  Options options;
  options.root = RG_LINT_FIXTURES;
  const Report report = rg::lint::run(options);

  const std::map<std::string, int> expected = {
      {"alloc", 1}, {"lock", 1},   {"io", 4},     {"throw", 1},    {"block", 1},
      {"push_back", 1}, {"call", 1}, {"cast", 1}, {"metric", 3}, {"errorcode", 2},
  };
  EXPECT_EQ(count_by_class(report), expected) << [&] {
    std::string all;
    for (const Finding& f : report.findings) {
      all += f.file + ":" + std::to_string(f.line) + ": [" +
             rg::lint::to_string(f.check) + "] " + f.message + "\n";
    }
    return all;
  }();
  EXPECT_EQ(report.findings.size(), 16u);
}

TEST(Lint, FixtureFindingsCarryFileAndLine) {
  Options options;
  options.root = RG_LINT_FIXTURES;
  const Report report = rg::lint::run(options);
  for (const Finding& f : report.findings) {
    EXPECT_FALSE(f.file.empty());
    EXPECT_GT(f.line, 0) << f.file << ": " << f.message;
    EXPECT_FALSE(f.message.empty());
  }
  // The propagation finding names both ends of the edge.
  const auto call = std::find_if(
      report.findings.begin(), report.findings.end(),
      [](const Finding& f) { return f.check == Check::kCall; });
  ASSERT_NE(call, report.findings.end());
  EXPECT_NE(call->message.find("tick"), std::string::npos);
  EXPECT_NE(call->message.find("helper_unannotated"), std::string::npos);
}

TEST(Lint, RealTreeIsClean) {
  Options options;
  options.root = RG_LINT_REPO_ROOT;
  const Report report = rg::lint::run(options);
  std::string all;
  for (const Finding& f : report.findings) {
    all += f.file + ":" + std::to_string(f.line) + ": [" +
           rg::lint::to_string(f.check) + "] " + f.message + "\n";
  }
  EXPECT_TRUE(report.findings.empty()) << all;
  // Sanity: the scan actually covered the tree and its annotations.
  EXPECT_GT(report.files_scanned, 150u);
  EXPECT_GT(report.realtime_functions, 150u);
}

TEST(Lint, RealTreeMetricInventoryMatchesKnownFamilies) {
  Options options;
  options.root = RG_LINT_REPO_ROOT;
  const Report report = rg::lint::run(options);
  const auto has = [&](const char* name) {
    return std::find(report.metric_names.begin(), report.metric_names.end(),
                     name) != report.metric_names.end();
  };
  EXPECT_TRUE(has("rg.span.control.tick"));
  EXPECT_TRUE(has("rg.gw.rx_packets"));
  EXPECT_TRUE(has("rg.gw.shard.*"));  // dynamic registration -> wildcard family
  EXPECT_TRUE(has("rg.pipeline.alarms"));
}

TEST(Lint, RegistryRenderIsSortedAndDeduped) {
  const std::string header = rg::lint::render_metric_registry(
      {"rg.b", "rg.a", "rg.b", "rg.c.*"});
  EXPECT_NE(header.find("#pragma once"), std::string::npos);
  const std::size_t a = header.find("\"rg.a\"");
  const std::size_t b = header.find("\"rg.b\"");
  const std::size_t c = header.find("\"rg.c.*\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(header.find("\"rg.b\"", b + 1), std::string::npos);  // deduped
}

}  // namespace
