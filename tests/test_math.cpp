// Unit tests for the math module: vectors, matrices, statistics, filters.
#include <gtest/gtest.h>

#include <cmath>

#include "math/fastmath.hpp"
#include "math/filters.hpp"
#include "math/mat.hpp"
#include "math/stats.hpp"
#include "math/vec.hpp"

namespace rg {
namespace {

// --- Vec --------------------------------------------------------------------

TEST(Vec, ArithmeticOps) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, 5.0, 6.0};
  EXPECT_EQ(a + b, (Vec3{5.0, 7.0, 9.0}));
  EXPECT_EQ(b - a, (Vec3{3.0, 3.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec3{2.0, 4.0, 6.0}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1.0, -2.0, -3.0}));
}

TEST(Vec, DotAndNorm) {
  const Vec3 a{3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
}

TEST(Vec, CrossProduct) {
  const Vec3 x{1.0, 0.0, 0.0};
  const Vec3 y{0.0, 1.0, 0.0};
  EXPECT_EQ(cross(x, y), (Vec3{0.0, 0.0, 1.0}));
  EXPECT_EQ(cross(y, x), (Vec3{0.0, 0.0, -1.0}));
  // a x a = 0
  const Vec3 a{2.0, -3.0, 5.0};
  EXPECT_DOUBLE_EQ(cross(a, a).norm(), 0.0);
}

TEST(Vec, DistanceAndClamp) {
  EXPECT_DOUBLE_EQ(distance(Vec3{0.0, 0.0, 0.0}, Vec3{1.0, 2.0, 2.0}), 3.0);
  EXPECT_EQ(clamp(Vec3{-5.0, 0.5, 5.0}, -1.0, 1.0), (Vec3{-1.0, 0.5, 1.0}));
}

TEST(Vec, FilledAndZero) {
  EXPECT_EQ(Vec3::zero(), (Vec3{0.0, 0.0, 0.0}));
  EXPECT_EQ(Vec3::filled(2.5), (Vec3{2.5, 2.5, 2.5}));
}

TEST(Vec, HighDimension) {
  Vec<12> x = Vec<12>::filled(1.0);
  const Vec<12> y = 2.0 * x;
  EXPECT_DOUBLE_EQ(y.dot(x), 24.0);
  EXPECT_DOUBLE_EQ(y.norm_inf(), 2.0);
}

TEST(Vec, InitializerSizeMismatchThrows) {
  EXPECT_THROW((Vec3{1.0, 2.0}), std::invalid_argument);
}

// --- Mat3 -------------------------------------------------------------------

TEST(Mat3, IdentityActsTrivially) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1.0, -2.0, 3.0};
  EXPECT_EQ(id * v, v);
  EXPECT_EQ(id * id, id);
}

TEST(Mat3, DiagonalScale) {
  const Mat3 d = Mat3::diagonal(2.0, 3.0, 4.0);
  EXPECT_EQ(d * (Vec3{1.0, 1.0, 1.0}), (Vec3{2.0, 3.0, 4.0}));
  EXPECT_DOUBLE_EQ(d.determinant(), 24.0);
}

TEST(Mat3, InverseRoundTrip) {
  Mat3 m;
  m(0, 0) = 2.0; m(0, 1) = 1.0; m(0, 2) = 0.0;
  m(1, 0) = -1.0; m(1, 1) = 3.0; m(1, 2) = 0.5;
  m(2, 0) = 0.2; m(2, 1) = 0.0; m(2, 2) = 1.5;
  const Mat3 inv = m.inverse();
  const Mat3 prod = m * inv;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Mat3, SingularInverseThrows) {
  Mat3 m;  // all zeros
  EXPECT_THROW((void)m.inverse(), std::domain_error);
}

TEST(Mat3, TransposeInvolution) {
  Mat3 m;
  m(0, 1) = 5.0;
  m(2, 0) = -3.0;
  EXPECT_EQ(m.transpose().transpose(), m);
  EXPECT_DOUBLE_EQ(m.transpose()(1, 0), 5.0);
}

// --- stats ------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 0.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 7.0);
}

TEST(Stats, MaeAndRmse) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(a, b), 1.0);
  EXPECT_NEAR(rms_error(a, b), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MaeLengthMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)mean_absolute_error(a, b), std::invalid_argument);
  EXPECT_THROW((void)rms_error(a, b), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs{5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 99.9), 5.0);
}

TEST(Stats, PercentileValidation) {
  const std::vector<double> xs{1.0};
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, -1.0), std::invalid_argument);
  EXPECT_THROW((void)percentile(xs, 101.0), std::invalid_argument);
}

TEST(Stats, PercentileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndReset) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  rs.add(3.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
}

// --- filters ----------------------------------------------------------------

TEST(LowPassFilter, ValidatesAlpha) {
  EXPECT_THROW(LowPassFilter(0.0), std::invalid_argument);
  EXPECT_THROW(LowPassFilter(1.5), std::invalid_argument);
  EXPECT_NO_THROW(LowPassFilter(1.0));
}

TEST(LowPassFilter, PrimesOnFirstSample) {
  LowPassFilter f(0.1);
  EXPECT_DOUBLE_EQ(f.update(10.0), 10.0);
}

TEST(LowPassFilter, ConvergesToConstant) {
  LowPassFilter f(0.2);
  f.update(0.0);
  double y = 0.0;
  for (int i = 0; i < 100; ++i) y = f.update(5.0);
  EXPECT_NEAR(y, 5.0, 1e-6);
}

TEST(LowPassFilter, AlphaOnePassesThrough) {
  LowPassFilter f(1.0);
  f.update(0.0);
  EXPECT_DOUBLE_EQ(f.update(7.0), 7.0);
}

TEST(LowPassFilter, FromCutoffValidation) {
  EXPECT_THROW(LowPassFilter::from_cutoff(0.0, 0.001), std::invalid_argument);
  EXPECT_THROW(LowPassFilter::from_cutoff(10.0, 0.0), std::invalid_argument);
  LowPassFilter f = LowPassFilter::from_cutoff(10.0, 0.001);
  f.update(0.0);
  EXPECT_GT(f.update(1.0), 0.0);
}

TEST(MovingAverage, WindowBehaviour) {
  MovingAverage ma(3);
  EXPECT_DOUBLE_EQ(ma.update(3.0), 3.0);
  EXPECT_DOUBLE_EQ(ma.update(6.0), 4.5);
  EXPECT_DOUBLE_EQ(ma.update(9.0), 6.0);
  EXPECT_DOUBLE_EQ(ma.update(12.0), 9.0);  // 3 dropped
  EXPECT_EQ(ma.count(), 3u);
}

TEST(MovingAverage, ValidatesWindow) {
  EXPECT_THROW(MovingAverage(0), std::invalid_argument);
}

TEST(MovingAverage, Reset) {
  MovingAverage ma(2);
  ma.update(5.0);
  ma.reset();
  EXPECT_DOUBLE_EQ(ma.value(), 0.0);
  EXPECT_EQ(ma.count(), 0u);
}

TEST(Differentiator, RampDerivative) {
  Differentiator d(0.001);  // no smoothing
  d.update(0.0);
  double v = 0.0;
  for (int i = 1; i <= 10; ++i) v = d.update(0.002 * i);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(Differentiator, FirstSampleGivesZero) {
  Differentiator d(0.001);
  EXPECT_DOUBLE_EQ(d.update(42.0), 0.0);
}

TEST(Differentiator, SmoothingLagsStep) {
  Differentiator d(0.001, 0.2);
  d.update(0.0);
  const double v1 = d.update(0.001);  // true derivative 1.0
  EXPECT_LT(v1, 1.0);
  EXPECT_GT(v1, 0.0);
}

TEST(Differentiator, ValidatesDt) {
  EXPECT_THROW(Differentiator(0.0), std::invalid_argument);
}

TEST(Differentiator, Reset) {
  Differentiator d(0.001);
  d.update(1.0);
  d.reset();
  EXPECT_DOUBLE_EQ(d.update(5.0), 0.0);
}

// --- fastmath: the dynamics hot loop's transcendental kernels --------------
// The batched SoA dynamics (dynamics/lane_kernel.hpp) leans on these; the
// accuracy contract is "well below the plant's noise floor", which these
// tests pin numerically against libm over dense sweeps.

TEST(FastMath, ExpMatchesStdWithinTwoUlp) {
  double worst = 0.0;
  for (int i = -60000; i <= 60000; ++i) {
    const double x = 0.01 * i;  // [-600, 600]
    const double ref = std::exp(x);
    const double got = fast_exp(x);
    const double rel = std::abs(got - ref) / ref;
    worst = std::max(worst, rel);
  }
  EXPECT_LT(worst, 5.0e-16);  // ~2 ulp
}

TEST(FastMath, ExpClampsInsteadOfOverflowing) {
  EXPECT_TRUE(std::isfinite(fast_exp(1.0e6)));
  EXPECT_TRUE(std::isfinite(fast_exp(-1.0e6)));
  EXPECT_GT(fast_exp(1.0e3), 1.0e300);
  EXPECT_LT(fast_exp(-1.0e3), 1.0e-300);
  EXPECT_DOUBLE_EQ(fast_exp(0.0), 1.0);
}

TEST(FastMath, TanhMatchesStdAndSaturates) {
  double worst = 0.0;
  for (int i = -25000; i <= 25000; ++i) {
    const double x = 0.001 * i;  // [-25, 25]
    worst = std::max(worst, std::abs(fast_tanh(x) - std::tanh(x)));
  }
  EXPECT_LT(worst, 4.0e-15);
  EXPECT_DOUBLE_EQ(fast_tanh(0.0), 0.0);
  EXPECT_DOUBLE_EQ(fast_tanh(100.0), -fast_tanh(-100.0));
  EXPECT_NEAR(fast_tanh(40.0), 1.0, 1.0e-15);
}

TEST(FastMath, SincosMatchesStdOverWorkspaceAngles) {
  double worst = 0.0;
  for (int i = -100000; i <= 100000; ++i) {
    const double x = 1.0e-3 * i;  // [-100, 100] rad: far beyond joint range
    double s = 0.0;
    double c = 0.0;
    fast_sincos(x, s, c);
    worst = std::max(worst, std::abs(s - std::sin(x)));
    worst = std::max(worst, std::abs(c - std::cos(x)));
  }
  EXPECT_LT(worst, 1.0e-15);
}

TEST(FastMath, SincosBoundedOnAbsurdInputs) {
  double s = 0.0;
  double c = 0.0;
  fast_sincos(1.0e300, s, c);
  EXPECT_LE(std::abs(s), 1.0);
  EXPECT_LE(std::abs(c), 1.0);
}

}  // namespace
}  // namespace rg
