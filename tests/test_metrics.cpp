// Unit tests for detection metrics (Table IV's ACC/TPR/FPR/F1).
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace rg {
namespace {

TEST(ConfusionMatrix, CountsCells) {
  ConfusionMatrix cm;
  cm.add(true, true);    // TP
  cm.add(true, false);   // FN
  cm.add(false, true);   // FP
  cm.add(false, false);  // TN
  EXPECT_EQ(cm.tp, 1u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.tn, 1u);
  EXPECT_EQ(cm.total(), 4u);
}

TEST(ConfusionMatrix, PerfectClassifier) {
  ConfusionMatrix cm;
  for (int i = 0; i < 10; ++i) cm.add(true, true);
  for (int i = 0; i < 90; ++i) cm.add(false, false);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 1.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 1.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
}

TEST(ConfusionMatrix, KnownValues) {
  // TP=8, FN=2, FP=3, TN=7.
  ConfusionMatrix cm{.tp = 8, .fp = 3, .tn = 7, .fn = 2};
  EXPECT_DOUBLE_EQ(cm.accuracy(), 15.0 / 20.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.8);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.3);
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 11.0);
  const double p = 8.0 / 11.0;
  const double r = 0.8;
  EXPECT_DOUBLE_EQ(cm.f1(), 2.0 * p * r / (p + r));
}

TEST(ConfusionMatrix, EmptyIsZeroNotNan) {
  ConfusionMatrix cm;
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.fpr(), 0.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

TEST(ConfusionMatrix, DegenerateAllNegative) {
  ConfusionMatrix cm;
  for (int i = 0; i < 5; ++i) cm.add(false, false);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(cm.tpr(), 0.0);  // no positives: defined as 0
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
}

}  // namespace
}  // namespace rg
