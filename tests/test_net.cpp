// Unit tests for the network module: ITP codec, UDP channel simulation,
// master console emulator.
#include <gtest/gtest.h>

#include <memory>

#include "net/itp_packet.hpp"
#include "net/master_console.hpp"
#include "net/udp_channel.hpp"
#include "trajectory/trajectory.hpp"

namespace rg {
namespace {

// --- ITP codec ------------------------------------------------------------------

TEST(ItpPacket, RoundTrip) {
  ItpPacket pkt;
  pkt.sequence = 123456;
  pkt.pedal_down = true;
  pkt.pos_increment = Vec3{1.5e-5, -2.5e-6, 9.9e-4};
  pkt.ori_increment = Vec3{1e-4, -1e-4, 0.0};
  const ItpBytes bytes = encode_itp(pkt);
  const auto decoded = decode_itp(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sequence, pkt.sequence);
  EXPECT_TRUE(decoded.value().pedal_down);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(decoded.value().pos_increment[i], pkt.pos_increment[i], 1e-9);
    EXPECT_NEAR(decoded.value().ori_increment[i], pkt.ori_increment[i], 1e-6);
  }
}

TEST(ItpPacket, ChecksumVerified) {
  ItpBytes bytes = encode_itp(ItpPacket{});
  bytes[6] ^= 0x10;
  const auto decoded = decode_itp(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kChecksumMismatch);
  // ... unless the caller (an in-process attacker) asks not to verify.
  EXPECT_TRUE(decode_itp(bytes, false).ok());
}

TEST(ItpPacket, WrongSizeRejected) {
  const std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_FALSE(decode_itp(tiny).ok());
}

TEST(ItpPacket, QuantizationSaturatesHugeIncrements) {
  ItpPacket pkt;
  pkt.pos_increment = Vec3{1.0e10, -1.0e10, 0.0};  // absurd metres
  const auto decoded = decode_itp(encode_itp(pkt));
  ASSERT_TRUE(decoded.ok());
  // Saturated to the int32 nm limit (~2.147 m), not wrapped to nonsense.
  EXPECT_NEAR(decoded.value().pos_increment[0], 2.147483647, 1e-6);
  EXPECT_NEAR(decoded.value().pos_increment[1], -2.147483648, 1e-6);
}

TEST(ItpPacket, PedalFlagIsolated) {
  ItpPacket pkt;
  pkt.pedal_down = false;
  EXPECT_FALSE(decode_itp(encode_itp(pkt)).value().pedal_down);
  pkt.pedal_down = true;
  EXPECT_TRUE(decode_itp(encode_itp(pkt)).value().pedal_down);
}

namespace {
std::uint8_t itp_checksum(const ItpBytes& bytes) {
  std::uint8_t c = 0;
  for (std::size_t i = 0; i + 1 < kItpPacketSize; ++i) c = static_cast<std::uint8_t>(c ^ bytes[i]);
  return c;
}
}  // namespace

TEST(ItpPacket, UndefinedFlagBitsRejected) {
  ItpPacket pkt;
  pkt.pedal_down = true;
  ItpBytes bytes = encode_itp(pkt);
  bytes[4] = static_cast<std::uint8_t>(bytes[4] | 0x20);
  bytes[kItpPacketSize - 1] = itp_checksum(bytes);  // valid checksum, bad flags
  const auto decoded = decode_itp(bytes);
  ASSERT_FALSE(decoded.ok());
  // Distinct error code from a checksum failure.
  EXPECT_EQ(decoded.error().code(), ErrorCode::kMalformedFlags);
}

TEST(ItpPacket, FlagCheckIndependentOfChecksumVerification) {
  ItpBytes bytes = encode_itp(ItpPacket{});
  bytes[4] = static_cast<std::uint8_t>(bytes[4] | 0x80);
  bytes[kItpPacketSize - 1] = itp_checksum(bytes);
  const auto lax = decode_itp(bytes, false);
  ASSERT_FALSE(lax.ok());
  EXPECT_EQ(lax.error().code(), ErrorCode::kMalformedFlags);
}

TEST(ItpPacket, EveryUndefinedFlagBitRejectedAlone) {
  for (int bit = 1; bit < 8; ++bit) {
    ItpBytes bytes = encode_itp(ItpPacket{});
    bytes[4] = static_cast<std::uint8_t>(1u << bit);
    bytes[kItpPacketSize - 1] = itp_checksum(bytes);
    const auto decoded = decode_itp(bytes);
    ASSERT_FALSE(decoded.ok()) << "flag bit " << bit;
    EXPECT_EQ(decoded.error().code(), ErrorCode::kMalformedFlags) << "flag bit " << bit;
  }
}

// --- UdpChannel -------------------------------------------------------------------

TEST(UdpChannel, PerfectLinkDeliversInOrder) {
  UdpChannel ch;
  ch.send({1});
  ch.send({2});
  ch.tick();
  auto a = ch.receive();
  auto b = ch.receive();
  ASSERT_TRUE(a && b);
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*b)[0], 2);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(UdpChannel, DelayHoldsDelivery) {
  UdpChannelConfig cfg;
  cfg.min_delay_ticks = 3;
  UdpChannel ch(cfg);
  ch.send({7});
  for (int i = 0; i < 2; ++i) {
    ch.tick();
    EXPECT_FALSE(ch.receive().has_value());
  }
  ch.tick();
  EXPECT_TRUE(ch.receive().has_value());
}

TEST(UdpChannel, FullLossDropsEverything) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 1.0;
  UdpChannel ch(cfg);
  for (int i = 0; i < 10; ++i) ch.send({static_cast<std::uint8_t>(i)});
  ch.tick();
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_EQ(ch.datagrams_dropped(), 10u);
}

TEST(UdpChannel, PartialLossApproximatesRate) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.seed = 99;
  UdpChannel ch(cfg);
  const int n = 5000;
  for (int i = 0; i < n; ++i) ch.send({0});
  const double rate = static_cast<double>(ch.datagrams_dropped()) / n;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(UdpChannel, ValidatesLossProbability) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 1.5;
  EXPECT_THROW(UdpChannel{cfg}, std::invalid_argument);
}

TEST(UdpChannel, DeterministicForSeed) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.seed = 5;
  UdpChannel a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    a.send({1});
    b.send({1});
  }
  EXPECT_EQ(a.datagrams_dropped(), b.datagrams_dropped());
}

TEST(UdpChannel, DuplicationDeliversTwiceAndCounts) {
  UdpChannelConfig cfg;
  cfg.duplicate_probability = 1.0;
  UdpChannel ch(cfg);
  ch.send({9});
  ch.tick();
  EXPECT_TRUE(ch.receive().has_value());
  EXPECT_TRUE(ch.receive().has_value());
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_EQ(ch.datagrams_duplicated(), 1u);
}

TEST(UdpChannel, ReorderSwapsAdjacentDatagrams) {
  UdpChannelConfig cfg;
  cfg.reorder_probability = 1.0;
  UdpChannel ch(cfg);
  ch.send({1});
  ch.send({2});
  ch.tick();
  const auto first = ch.receive();
  const auto second = ch.receive();
  ASSERT_TRUE(first && second);
  EXPECT_EQ((*first)[0], 2);  // queued ahead of its predecessor
  EXPECT_EQ((*second)[0], 1);
  EXPECT_EQ(ch.datagrams_reordered(), 1u);
}

TEST(UdpChannel, ValidatesDuplicateAndReorderProbabilities) {
  UdpChannelConfig dup;
  dup.duplicate_probability = 1.5;
  EXPECT_THROW(UdpChannel{dup}, std::invalid_argument);
  UdpChannelConfig reo;
  reo.reorder_probability = -0.1;
  EXPECT_THROW(UdpChannel{reo}, std::invalid_argument);
}

// Loss x jitter x duplication x reordering matrix: whatever the knob
// combination, conservation holds (delivered == sent - dropped +
// duplicated) and the impairment counters fire iff their knob is on.
TEST(UdpChannel, LossJitterReorderDuplicateMatrix) {
  const int n = 1500;
  for (const double loss : {0.0, 0.2}) {
    for (const std::uint32_t jitter : {0u, 3u}) {
      for (const double dup : {0.0, 0.25}) {
        for (const double reorder : {0.0, 0.25}) {
          UdpChannelConfig cfg;
          cfg.loss_probability = loss;
          cfg.jitter_ticks = jitter;
          cfg.duplicate_probability = dup;
          cfg.reorder_probability = reorder;
          cfg.seed = 17;
          UdpChannel ch(cfg);
          for (int i = 0; i < n; ++i) ch.send({static_cast<std::uint8_t>(i & 0xff)});
          std::uint64_t delivered = 0;
          for (int t = 0; t < 8; ++t) {
            ch.tick();
            while (ch.receive().has_value()) ++delivered;
          }
          EXPECT_EQ(ch.in_flight(), 0u);
          EXPECT_EQ(delivered,
                    ch.datagrams_sent() - ch.datagrams_dropped() + ch.datagrams_duplicated());
          EXPECT_EQ(ch.datagrams_sent(), static_cast<std::uint64_t>(n));
          EXPECT_EQ(loss > 0.0, ch.datagrams_dropped() > 0) << loss;
          EXPECT_EQ(dup > 0.0, ch.datagrams_duplicated() > 0) << dup;
          EXPECT_EQ(reorder > 0.0, ch.datagrams_reordered() > 0) << reorder;
        }
      }
    }
  }
}

TEST(UdpChannel, ImpairedChannelDeterministicForSeed) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 0.1;
  cfg.jitter_ticks = 2;
  cfg.duplicate_probability = 0.2;
  cfg.reorder_probability = 0.2;
  cfg.seed = 23;
  UdpChannel a(cfg), b(cfg);
  std::vector<std::uint8_t> order_a, order_b;
  for (int i = 0; i < 400; ++i) {
    a.send({static_cast<std::uint8_t>(i & 0xff)});
    b.send({static_cast<std::uint8_t>(i & 0xff)});
    a.tick();
    b.tick();
    while (const auto d = a.receive()) order_a.push_back((*d)[0]);
    while (const auto d = b.receive()) order_b.push_back((*d)[0]);
  }
  EXPECT_EQ(order_a, order_b);
  EXPECT_EQ(a.datagrams_reordered(), b.datagrams_reordered());
  EXPECT_EQ(a.datagrams_duplicated(), b.datagrams_duplicated());
}

// --- PedalSchedule / MasterConsole ---------------------------------------------------

TEST(PedalSchedule, IntervalSemantics) {
  const PedalSchedule sched{{{1.0, 2.0}, {3.0, 4.0}}};
  EXPECT_FALSE(sched.pedal_down_at(0.5));
  EXPECT_TRUE(sched.pedal_down_at(1.0));
  EXPECT_TRUE(sched.pedal_down_at(1.999));
  EXPECT_FALSE(sched.pedal_down_at(2.0));
  EXPECT_TRUE(sched.pedal_down_at(3.5));
}

TEST(PedalSchedule, HoldFrom) {
  const PedalSchedule sched = PedalSchedule::hold_from(1.2);
  EXPECT_FALSE(sched.pedal_down_at(1.19));
  EXPECT_TRUE(sched.pedal_down_at(1.2));
  EXPECT_TRUE(sched.pedal_down_at(1e6));
}

std::shared_ptr<const Trajectory> line_trajectory() {
  return std::make_shared<WaypointTrajectory>(
      std::vector<Position>{Position{0.1, 0.0, -0.1}, Position{0.12, 0.0, -0.1}},
      /*speed=*/0.02);
}

TEST(MasterConsole, FirstPedalPacketHasZeroIncrement) {
  MasterConsole console(line_trajectory(), PedalSchedule::hold_from(0.0));
  const ItpPacket first = console.tick();
  EXPECT_TRUE(first.pedal_down);
  EXPECT_DOUBLE_EQ(first.pos_increment.norm(), 0.0);
}

TEST(MasterConsole, IncrementsSumToTrajectoryDisplacement) {
  auto traj = line_trajectory();
  MasterConsole console(traj, PedalSchedule::hold_from(0.0));
  Vec3 total = Vec3::zero();
  const int ticks = static_cast<int>(traj->duration() * 1000.0) + 100;
  for (int i = 0; i < ticks; ++i) total += console.tick().pos_increment;
  const Vec3 expected = traj->position(traj->duration()) - traj->position(0.0);
  EXPECT_NEAR(distance(total, expected), 0.0, 1e-6);
  EXPECT_TRUE(console.finished());
}

TEST(MasterConsole, PedalUpSendsNoMotion) {
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.5, 1.0}}});
  for (int i = 0; i < 100; ++i) {  // first 100 ms: pedal up
    const ItpPacket pkt = console.tick();
    EXPECT_FALSE(pkt.pedal_down);
    EXPECT_DOUBLE_EQ(pkt.pos_increment.norm(), 0.0);
  }
}

TEST(MasterConsole, TrajectoryTimeFreezesWhilePedalUp) {
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.0, 0.1}, {0.2, 0.3}}});
  for (int i = 0; i < 150; ++i) (void)console.tick();
  const double t_at_150 = console.trajectory_time();
  EXPECT_NEAR(t_at_150, 0.1, 1e-9);  // only the pedal-down time advanced
}

TEST(MasterConsole, SequenceNumbersIncrease) {
  MasterConsole console(line_trajectory(), PedalSchedule::hold_from(0.0));
  const ItpPacket a = console.tick();
  const ItpPacket b = console.tick();
  EXPECT_EQ(b.sequence, a.sequence + 1);
}

TEST(MasterConsole, NullTrajectoryThrows) {
  EXPECT_THROW(MasterConsole(nullptr, PedalSchedule::hold_from(0.0)), std::invalid_argument);
}

TEST(MasterConsole, ReanchorsAfterPedalLift) {
  // After a pedal lift + re-press, the first new packet must again carry a
  // zero increment (no jump from trajectory progress made while up).
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.0, 0.05}, {0.1, 1.0}}});
  for (int i = 0; i < 100; ++i) (void)console.tick();
  const ItpPacket rearm = console.tick();  // t = 0.100 s: pedal just pressed
  EXPECT_TRUE(rearm.pedal_down);
  EXPECT_DOUBLE_EQ(rearm.pos_increment.norm(), 0.0);
}

}  // namespace
}  // namespace rg
