// Unit tests for the network module: ITP codec, UDP channel simulation,
// master console emulator.
#include <gtest/gtest.h>

#include <memory>

#include "net/itp_packet.hpp"
#include "net/master_console.hpp"
#include "net/udp_channel.hpp"
#include "trajectory/trajectory.hpp"

namespace rg {
namespace {

// --- ITP codec ------------------------------------------------------------------

TEST(ItpPacket, RoundTrip) {
  ItpPacket pkt;
  pkt.sequence = 123456;
  pkt.pedal_down = true;
  pkt.pos_increment = Vec3{1.5e-5, -2.5e-6, 9.9e-4};
  pkt.ori_increment = Vec3{1e-4, -1e-4, 0.0};
  const ItpBytes bytes = encode_itp(pkt);
  const auto decoded = decode_itp(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sequence, pkt.sequence);
  EXPECT_TRUE(decoded.value().pedal_down);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(decoded.value().pos_increment[i], pkt.pos_increment[i], 1e-9);
    EXPECT_NEAR(decoded.value().ori_increment[i], pkt.ori_increment[i], 1e-6);
  }
}

TEST(ItpPacket, ChecksumVerified) {
  ItpBytes bytes = encode_itp(ItpPacket{});
  bytes[6] ^= 0x10;
  const auto decoded = decode_itp(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code(), ErrorCode::kChecksumMismatch);
  // ... unless the caller (an in-process attacker) asks not to verify.
  EXPECT_TRUE(decode_itp(bytes, false).ok());
}

TEST(ItpPacket, WrongSizeRejected) {
  const std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_FALSE(decode_itp(tiny).ok());
}

TEST(ItpPacket, QuantizationSaturatesHugeIncrements) {
  ItpPacket pkt;
  pkt.pos_increment = Vec3{1.0e10, -1.0e10, 0.0};  // absurd metres
  const auto decoded = decode_itp(encode_itp(pkt));
  ASSERT_TRUE(decoded.ok());
  // Saturated to the int32 nm limit (~2.147 m), not wrapped to nonsense.
  EXPECT_NEAR(decoded.value().pos_increment[0], 2.147483647, 1e-6);
  EXPECT_NEAR(decoded.value().pos_increment[1], -2.147483648, 1e-6);
}

TEST(ItpPacket, PedalFlagIsolated) {
  ItpPacket pkt;
  pkt.pedal_down = false;
  EXPECT_FALSE(decode_itp(encode_itp(pkt)).value().pedal_down);
  pkt.pedal_down = true;
  EXPECT_TRUE(decode_itp(encode_itp(pkt)).value().pedal_down);
}

// --- UdpChannel -------------------------------------------------------------------

TEST(UdpChannel, PerfectLinkDeliversInOrder) {
  UdpChannel ch;
  ch.send({1});
  ch.send({2});
  ch.tick();
  auto a = ch.receive();
  auto b = ch.receive();
  ASSERT_TRUE(a && b);
  EXPECT_EQ((*a)[0], 1);
  EXPECT_EQ((*b)[0], 2);
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(UdpChannel, DelayHoldsDelivery) {
  UdpChannelConfig cfg;
  cfg.min_delay_ticks = 3;
  UdpChannel ch(cfg);
  ch.send({7});
  for (int i = 0; i < 2; ++i) {
    ch.tick();
    EXPECT_FALSE(ch.receive().has_value());
  }
  ch.tick();
  EXPECT_TRUE(ch.receive().has_value());
}

TEST(UdpChannel, FullLossDropsEverything) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 1.0;
  UdpChannel ch(cfg);
  for (int i = 0; i < 10; ++i) ch.send({static_cast<std::uint8_t>(i)});
  ch.tick();
  EXPECT_FALSE(ch.receive().has_value());
  EXPECT_EQ(ch.datagrams_dropped(), 10u);
}

TEST(UdpChannel, PartialLossApproximatesRate) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 0.3;
  cfg.seed = 99;
  UdpChannel ch(cfg);
  const int n = 5000;
  for (int i = 0; i < n; ++i) ch.send({0});
  const double rate = static_cast<double>(ch.datagrams_dropped()) / n;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(UdpChannel, ValidatesLossProbability) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 1.5;
  EXPECT_THROW(UdpChannel{cfg}, std::invalid_argument);
}

TEST(UdpChannel, DeterministicForSeed) {
  UdpChannelConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.seed = 5;
  UdpChannel a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    a.send({1});
    b.send({1});
  }
  EXPECT_EQ(a.datagrams_dropped(), b.datagrams_dropped());
}

// --- PedalSchedule / MasterConsole ---------------------------------------------------

TEST(PedalSchedule, IntervalSemantics) {
  const PedalSchedule sched{{{1.0, 2.0}, {3.0, 4.0}}};
  EXPECT_FALSE(sched.pedal_down_at(0.5));
  EXPECT_TRUE(sched.pedal_down_at(1.0));
  EXPECT_TRUE(sched.pedal_down_at(1.999));
  EXPECT_FALSE(sched.pedal_down_at(2.0));
  EXPECT_TRUE(sched.pedal_down_at(3.5));
}

TEST(PedalSchedule, HoldFrom) {
  const PedalSchedule sched = PedalSchedule::hold_from(1.2);
  EXPECT_FALSE(sched.pedal_down_at(1.19));
  EXPECT_TRUE(sched.pedal_down_at(1.2));
  EXPECT_TRUE(sched.pedal_down_at(1e6));
}

std::shared_ptr<const Trajectory> line_trajectory() {
  return std::make_shared<WaypointTrajectory>(
      std::vector<Position>{Position{0.1, 0.0, -0.1}, Position{0.12, 0.0, -0.1}},
      /*speed=*/0.02);
}

TEST(MasterConsole, FirstPedalPacketHasZeroIncrement) {
  MasterConsole console(line_trajectory(), PedalSchedule::hold_from(0.0));
  const ItpPacket first = console.tick();
  EXPECT_TRUE(first.pedal_down);
  EXPECT_DOUBLE_EQ(first.pos_increment.norm(), 0.0);
}

TEST(MasterConsole, IncrementsSumToTrajectoryDisplacement) {
  auto traj = line_trajectory();
  MasterConsole console(traj, PedalSchedule::hold_from(0.0));
  Vec3 total = Vec3::zero();
  const int ticks = static_cast<int>(traj->duration() * 1000.0) + 100;
  for (int i = 0; i < ticks; ++i) total += console.tick().pos_increment;
  const Vec3 expected = traj->position(traj->duration()) - traj->position(0.0);
  EXPECT_NEAR(distance(total, expected), 0.0, 1e-6);
  EXPECT_TRUE(console.finished());
}

TEST(MasterConsole, PedalUpSendsNoMotion) {
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.5, 1.0}}});
  for (int i = 0; i < 100; ++i) {  // first 100 ms: pedal up
    const ItpPacket pkt = console.tick();
    EXPECT_FALSE(pkt.pedal_down);
    EXPECT_DOUBLE_EQ(pkt.pos_increment.norm(), 0.0);
  }
}

TEST(MasterConsole, TrajectoryTimeFreezesWhilePedalUp) {
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.0, 0.1}, {0.2, 0.3}}});
  for (int i = 0; i < 150; ++i) (void)console.tick();
  const double t_at_150 = console.trajectory_time();
  EXPECT_NEAR(t_at_150, 0.1, 1e-9);  // only the pedal-down time advanced
}

TEST(MasterConsole, SequenceNumbersIncrease) {
  MasterConsole console(line_trajectory(), PedalSchedule::hold_from(0.0));
  const ItpPacket a = console.tick();
  const ItpPacket b = console.tick();
  EXPECT_EQ(b.sequence, a.sequence + 1);
}

TEST(MasterConsole, NullTrajectoryThrows) {
  EXPECT_THROW(MasterConsole(nullptr, PedalSchedule::hold_from(0.0)), std::invalid_argument);
}

TEST(MasterConsole, ReanchorsAfterPedalLift) {
  // After a pedal lift + re-press, the first new packet must again carry a
  // zero increment (no jump from trajectory progress made while up).
  MasterConsole console(line_trajectory(), PedalSchedule{{{0.0, 0.05}, {0.1, 1.0}}});
  for (int i = 0; i < 100; ++i) (void)console.tick();
  const ItpPacket rearm = console.tick();  // t = 0.100 s: pedal just pressed
  EXPECT_TRUE(rearm.pedal_down);
  EXPECT_DOUBLE_EQ(rearm.pos_increment.norm(), 0.0);
}

}  // namespace
}  // namespace rg
