// Telemetry subsystem tests: histogram bucket/percentile math, metrics
// registry sharding and snapshot merging (including an 8-thread hammer
// that the TSan tier-1 stage runs), span/trace plumbing, the structured
// event log, and the alarm-triggered flight recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "common/log.hpp"
#include "obs/obs.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/trace.hpp"

namespace rg {
namespace {

using obs::EventField;
using obs::EventLog;
using obs::FlightFrame;
using obs::FlightRecorder;
using obs::HistogramData;
using obs::MetricsSnapshot;
using obs::Registry;
using obs::TraceWriter;

bool contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- Histogram bucket / percentile math --------------------------------------

TEST(Obs, HistogramExactBelowSubBuckets) {
  HistogramData h;
  for (std::uint64_t v = 0; v < HistogramData::kSubBuckets; ++v) {
    EXPECT_EQ(HistogramData::bucket_index(v), v);
    EXPECT_EQ(HistogramData::bucket_lower(v), v);
    EXPECT_EQ(HistogramData::bucket_width(v), 1u);
    h.observe(v);
  }
  EXPECT_EQ(h.count, HistogramData::kSubBuckets);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, HistogramData::kSubBuckets - 1);
  // Values below kSubBuckets land in width-1 buckets, so percentiles are
  // exact: the k-th of 16 values is k-1.
  for (std::uint64_t k = 1; k <= HistogramData::kSubBuckets; ++k) {
    const double p = 100.0 * static_cast<double>(k) / 16.0;
    EXPECT_DOUBLE_EQ(h.percentile(p), static_cast<double>(k - 1)) << "p=" << p;
  }
}

TEST(Obs, HistogramBucketGeometry) {
  const std::uint64_t values[] = {0,    1,    15,        16,        17,
                                  100,  1023, 1024,      123'456,   1'000'000,
                                  1ull << 40, HistogramData::max_trackable()};
  for (std::uint64_t v : values) {
    const std::size_t idx = HistogramData::bucket_index(v);
    ASSERT_LT(idx, HistogramData::kBucketCount) << v;
    const std::uint64_t lower = HistogramData::bucket_lower(idx);
    const std::uint64_t width = HistogramData::bucket_width(idx);
    EXPECT_LE(lower, v) << v;
    EXPECT_LT(v, lower + width) << v;
    // Log-linear guarantee: bucket width <= lower/16 above the exact range,
    // i.e. at most 6.25% relative error.
    if (v >= HistogramData::kSubBuckets) {
      EXPECT_LE(width * 16, lower + width) << v;
    }
  }
  // Bucket index is monotone in the value.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t idx = HistogramData::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
  // Overflow clamps into the top bucket instead of indexing out of range.
  EXPECT_EQ(HistogramData::bucket_index(HistogramData::max_trackable() + 123),
            HistogramData::bucket_index(HistogramData::max_trackable()));
}

TEST(Obs, HistogramPercentilesOnKnownDistribution) {
  HistogramData h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  EXPECT_EQ(h.count, 1000u);
  EXPECT_EQ(h.min, 1u);
  EXPECT_EQ(h.max, 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Within one sub-bucket (6.25%) of the exact rank statistic.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 0.0625 * 500.0 + 1.0);
  EXPECT_NEAR(h.percentile(90.0), 900.0, 0.0625 * 900.0 + 1.0);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 0.0625 * 990.0 + 1.0);
  // The tails are exact.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
  // Percentiles are monotone and stay inside the observed range.
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    prev = v;
  }
}

TEST(Obs, HistogramQuantileValidityFlag) {
  HistogramData h;
  // Empty histogram: never NaN, never a made-up value — {0.0, false}.
  EXPECT_FALSE(h.quantile(50.0).valid);
  EXPECT_EQ(h.quantile(50.0).value, 0.0);
  EXPECT_EQ(h.percentile(99.0), 0.0);
  // NaN percentile is answered invalid, not propagated.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(h.quantile(nan).valid);
  EXPECT_EQ(h.quantile(nan).value, 0.0);

  h.observe(7);
  const HistogramData::Quantile q = h.quantile(50.0);
  EXPECT_TRUE(q.valid);
  EXPECT_EQ(q.value, 7.0);
  EXPECT_TRUE(h.quantile(0.0).valid);
  EXPECT_TRUE(h.quantile(100.0).valid);
  EXPECT_FALSE(h.quantile(nan).valid);  // NaN stays invalid even with data
}

TEST(Obs, HistogramMergeAssociativeAndCommutative) {
  HistogramData a, b, c, all;
  for (std::uint64_t v = 1; v <= 100; ++v) { a.observe(v); all.observe(v); }
  for (std::uint64_t v = 101; v <= 200; ++v) { b.observe(v); all.observe(v); }
  for (std::uint64_t v = 1'000'000; v < 1'000'050; ++v) { c.observe(v); all.observe(v); }

  HistogramData ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramData bc = b;     // a + (b + c)
  bc.merge(c);
  HistogramData a_bc = a;
  a_bc.merge(bc);
  HistogramData ba = b;     // b + a
  ba.merge(a);
  ba.merge(c);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, ba);
  EXPECT_EQ(ab_c, all);  // merging equals observing the union sequentially
}

// --- Metrics registry --------------------------------------------------------

TEST(Obs, RegistryRoundTripAndSnapshot) {
  Registry reg;
  const auto c = reg.counter("rg.test.counter");
  const auto g = reg.gauge("rg.test.gauge");
  const auto h = reg.histogram("rg.test.hist");

  EXPECT_EQ(obs::metric_kind(c), obs::MetricKind::kCounter);
  EXPECT_EQ(obs::metric_kind(g), obs::MetricKind::kGauge);
  EXPECT_EQ(obs::metric_kind(h), obs::MetricKind::kHistogram);
  // Registration is idempotent per name.
  EXPECT_EQ(reg.counter("rg.test.counter"), c);

  reg.add(c, 3);
  reg.add(c);
  reg.set(g, 2.5);
  reg.observe(h, 7);
  reg.observe(h, 1000);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("rg.test.counter"), nullptr);
  EXPECT_EQ(snap.counter("rg.test.counter")->value, 4u);
  const HistogramData* hd = snap.histogram("rg.test.hist");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2u);
  EXPECT_EQ(hd->sum, 1007u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].name, "rg.test.gauge");
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);

  reg.reset();
  const MetricsSnapshot zero = reg.snapshot();
  ASSERT_NE(zero.counter("rg.test.counter"), nullptr);  // registrations survive
  EXPECT_EQ(zero.counter("rg.test.counter")->value, 0u);
  EXPECT_TRUE(zero.histogram("rg.test.hist")->empty());
}

TEST(Obs, RegistryRegistrationErrors) {
  Registry reg;
  reg.counter("rg.test.name");
  // Same name, different kind.
  EXPECT_THROW((void)reg.gauge("rg.test.name"), std::invalid_argument);
  EXPECT_THROW((void)reg.histogram("rg.test.name"), std::invalid_argument);
  // Capacity exhaustion (gauges have the smallest table).
  for (std::size_t i = 0; i < Registry::kMaxGauges; ++i) {
    (void)reg.gauge("rg.test.gauge." + std::to_string(i));
  }
  EXPECT_THROW((void)reg.gauge("rg.test.gauge.overflow"), std::length_error);
}

TEST(Obs, RegistryThreadedHammerExactTotals) {
  // 8 writers hammer one registry's counter and histogram concurrently;
  // the snapshot must see every write exactly once.  This is the TSan
  // tier-1 coverage for the lock-free shard path.
  Registry reg;
  const auto c = reg.counter("rg.test.hammer.counter");
  const auto h = reg.histogram("rg.test.hammer.hist");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, c, h, t] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        reg.add(c, 1);
        reg.observe(h, (static_cast<std::uint64_t>(t) * 31 + i) % 1024);
      }
    });
  }
  // Snapshot while writers are live: must be race-free (TSan) and never
  // observe more than was written.  Exactness is only guaranteed once the
  // writers quiesce — the shard fields are independent relaxed atomics, so
  // a mid-flight bucket total may run ahead of the count it races with.
  const MetricsSnapshot mid = reg.snapshot();
  if (const HistogramData* hd = mid.histogram("rg.test.hammer.hist")) {
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : hd->buckets) bucket_total += b;
    EXPECT_LE(bucket_total, kThreads * kIters);
    EXPECT_LE(hd->count, kThreads * kIters);
  }
  for (std::thread& th : threads) th.join();

  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kIters; ++i) {
      expected_sum += (static_cast<std::uint64_t>(t) * 31 + i) % 1024;
    }
  }
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_NE(snap.counter("rg.test.hammer.counter"), nullptr);
  EXPECT_EQ(snap.counter("rg.test.hammer.counter")->value, kThreads * kIters);
  const HistogramData* hd = snap.histogram("rg.test.hammer.hist");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, kThreads * kIters);
  EXPECT_EQ(hd->sum, expected_sum);
  EXPECT_EQ(hd->min, 0u);
  EXPECT_EQ(hd->max, 1023u);
}

TEST(Obs, SnapshotTotalsIndependentOfShardCount) {
  // The same aggregate workload split across 1, 2, or 8 threads must
  // produce identical snapshots — shard layout is invisible after merge.
  constexpr std::uint64_t kTotal = 8'000;
  auto run_split = [](int threads) {
    Registry reg;
    const auto c = reg.counter("rg.test.split.counter");
    const auto h = reg.histogram("rg.test.split.hist");
    const std::uint64_t per = kTotal / static_cast<std::uint64_t>(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      const std::uint64_t begin = static_cast<std::uint64_t>(t) * per;
      pool.emplace_back([&reg, c, h, begin, per] {
        for (std::uint64_t i = begin; i < begin + per; ++i) {
          reg.add(c, 2);
          reg.observe(h, i % 4096);
        }
      });
    }
    for (std::thread& th : pool) th.join();
    std::ostringstream os;
    reg.snapshot().write_json(os);
    return os.str();
  };
  const std::string one = run_split(1);
  EXPECT_EQ(one, run_split(2));
  EXPECT_EQ(one, run_split(8));
}

TEST(Obs, SnapshotMergeAssociative) {
  auto make = [](std::uint64_t counter_value, std::uint64_t hist_base,
                 const char* extra_counter) {
    Registry reg;
    reg.add(reg.counter("rg.test.merge.shared"), counter_value);
    if (extra_counter != nullptr) reg.add(reg.counter(extra_counter), 1);
    const auto h = reg.histogram("rg.test.merge.hist");
    for (std::uint64_t i = 0; i < 100; ++i) reg.observe(h, hist_base + i);
    return reg.snapshot();
  };
  const MetricsSnapshot s1 = make(1, 0, "rg.test.merge.only1");
  const MetricsSnapshot s2 = make(10, 5'000, nullptr);
  const MetricsSnapshot s3 = make(100, 1'000'000, "rg.test.merge.only3");

  auto render = [](const MetricsSnapshot& s) {
    std::ostringstream os;
    s.write_json(os);
    return os.str();
  };

  MetricsSnapshot left = s1;   // (s1 + s2) + s3
  left.merge(s2);
  left.merge(s3);
  MetricsSnapshot right23 = s2;  // s1 + (s2 + s3)
  right23.merge(s3);
  MetricsSnapshot right = s1;
  right.merge(right23);

  const std::string merged = render(left);
  EXPECT_EQ(merged, render(right));
  EXPECT_TRUE(contains(merged, "\"rg.test.merge.shared\": 111"));
  EXPECT_TRUE(contains(merged, "rg.test.merge.only1"));
  EXPECT_TRUE(contains(merged, "rg.test.merge.only3"));
  EXPECT_TRUE(contains(merged, "\"schema\": \"rg.metrics/1\""));
}

// --- Spans and the trace writer ----------------------------------------------

TEST(Obs, SpanFeedsRegistryAndTraceWriter) {
  TraceWriter writer;
  writer.install();
  constexpr int kIters = 50;
  for (int i = 0; i < kIters; ++i) {
    RG_SPAN("test.obs_span");
  }
  writer.uninstall();

  const MetricsSnapshot snap = Registry::global().snapshot();
  const HistogramData* hd = snap.histogram("rg.span.test.obs_span");
#ifdef RG_OBS_DISABLED
  EXPECT_EQ(hd, nullptr);
  EXPECT_EQ(writer.events(), 0u);
#else
  ASSERT_NE(hd, nullptr);
  EXPECT_GE(hd->count, static_cast<std::uint64_t>(kIters));
  EXPECT_GE(writer.events(), static_cast<std::size_t>(kIters));

  std::ostringstream os;
  writer.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(contains(json, "\"traceEvents\": ["));
  EXPECT_TRUE(contains(json, "\"name\": \"test.obs_span\""));
  EXPECT_TRUE(contains(json, "\"ph\": \"X\""));
#endif
  // After uninstall, spans no longer reach the writer.
  const std::size_t before = writer.events();
  {
    RG_SPAN("test.obs_span");
  }
  EXPECT_EQ(writer.events(), before);
}

// --- Event log ---------------------------------------------------------------

TEST(Obs, EventLogJsonlFormatAndEscaping) {
  EventLog log;
  log.emit("unit_test", 42u, {{"name", "quote\"back\\slash\nline"},
                              {"ratio", 0.5},
                              {"delta", -3},
                              {"ticks", std::uint64_t{7}},
                              {"armed", true}});
  log.emit("no_tick", std::nullopt, {});

  const std::vector<std::string> lines = log.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(lines[0], "{\"kind\": \"unit_test\", \"seq\": 0, \"tick\": 42,"));
  EXPECT_TRUE(contains(lines[0], "\"name\": \"quote\\\"back\\\\slash\\nline\""));
  EXPECT_TRUE(contains(lines[0], "\"ratio\": 0.5"));
  EXPECT_TRUE(contains(lines[0], "\"delta\": -3"));
  EXPECT_TRUE(contains(lines[0], "\"armed\": true"));
  EXPECT_TRUE(contains(lines[1], "\"seq\": 1, \"tick\": null,"));
  // Every record is a single line (escaping keeps JSONL one-per-line).
  for (const std::string& line : lines) {
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }

  std::ostringstream os;
  log.write_jsonl(os);
  const std::string out = os.str();
  EXPECT_TRUE(contains(out, "{\"schema\": \"rg.events/1\", \"events\": 2,"));
  EXPECT_EQ(static_cast<std::size_t>(std::count(out.begin(), out.end(), '\n')), 3u);

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  log.emit("after_clear", std::nullopt, {});
  EXPECT_TRUE(contains(log.lines()[0], "\"seq\": 0"));  // sequence restarts
}

TEST(Obs, EventLogRenderFieldsAndEmitRaw) {
  const std::string fragment = EventLog::render_fields(
      {EventField{"job", std::uint64_t{3}}, EventField{"label", "a\"b"}});
  EXPECT_EQ(fragment, ", \"job\": 3, \"label\": \"a\\\"b\"");

  EventLog log;
  log.emit_raw("flight_dump", 9u, fragment + ", \"ring\": [1, 2, 3]");
  ASSERT_EQ(log.size(), 1u);
  const std::string line = log.lines()[0];
  EXPECT_TRUE(contains(line, "\"kind\": \"flight_dump\""));
  EXPECT_TRUE(contains(line, "\"job\": 3"));
  EXPECT_TRUE(contains(line, "\"ring\": [1, 2, 3]}"));
}

TEST(Obs, EventLogEmitRawSanitizesHostileFragments) {
  EventLog log;
  // Each fragment below would corrupt the surrounding JSONL record if
  // spliced verbatim; after sanitization every line must still be a
  // single-line JSON object.
  log.emit_raw("hostile", 1u, ", \"a\": \"embedded\nnewline\"");      // ctrl byte in string
  log.emit_raw("hostile", 2u, ", \"b\": \"unterminated");             // open string
  log.emit_raw("hostile", 3u, std::string(", \"c\": \"dangling\\"));  // trailing backslash
  log.emit_raw("hostile", 4u, ", \"d\": }{not json");                 // structurally broken
  log.emit_raw("hostile", 5u, ", \"e\": 1,\n \"f\": 2");              // newline between tokens
  log.emit_raw("hostile", 6u, "");                                    // empty fragment

  const std::vector<std::string> lines = log.lines();
  ASSERT_EQ(lines.size(), 6u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    // The whole record must parse as JSON — the property /stats embedding
    // relies on.
    EXPECT_TRUE(rg::json::parse(line).ok()) << line;
  }
  // Repairable fragments keep their fields; hopeless ones are demoted to
  // an escaped "raw" string field rather than dropped.
  EXPECT_TRUE(contains(lines[0], "\"a\": \"embedded\\u000anewline\""));
  EXPECT_TRUE(contains(lines[3], "\"raw\": "));
  EXPECT_TRUE(contains(lines[4], "\"f\": 2"));
}

TEST(Obs, EventLogRecentReturnsTail) {
  EventLog log;
  for (int i = 0; i < 5; ++i) {
    log.emit("tick", static_cast<std::uint64_t>(i), {});
  }
  const std::vector<std::string> tail = log.recent(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_TRUE(contains(tail[0], "\"tick\": 3"));
  EXPECT_TRUE(contains(tail[1], "\"tick\": 4"));
  EXPECT_EQ(log.recent(100).size(), 5u);  // clamped to what exists
  EXPECT_TRUE(log.recent(0).empty());
}

TEST(Obs, LogBridgeForwardsWarningsToEventLog) {
  EventLog log;
  obs::attach_log_events(&log);
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  RG_LOG(kWarn) << "bridged warning";
  RG_LOG(kInfo) << "below threshold, not bridged";
  set_log_level(saved);
  obs::attach_log_events(nullptr);
  EXPECT_EQ(obs::attached_log_events(), nullptr);

  ASSERT_EQ(log.size(), 1u);
  const std::string line = log.lines()[0];
  EXPECT_TRUE(contains(line, "\"kind\": \"log\""));
  EXPECT_TRUE(contains(line, "\"level\": \"warn\""));
  EXPECT_TRUE(contains(line, "\"message\": \"bridged warning\""));
  EXPECT_TRUE(contains(line, "\"tick\": null"));
}

// --- Trace recorder retention ------------------------------------------------

TEST(Obs, TraceRecorderKeepLastN) {
  TraceRecorder bounded(10);
  EXPECT_EQ(bounded.capacity(), 10u);
  for (std::uint64_t i = 0; i < 25; ++i) {
    TraceSample s;
    s.tick = i;
    bounded.record(s);
  }
  EXPECT_EQ(bounded.recorded(), 25u);
  EXPECT_EQ(bounded.size(), 10u);
  const std::vector<TraceSample> kept = bounded.samples();
  ASSERT_EQ(kept.size(), 10u);
  EXPECT_EQ(kept.front().tick, 15u);  // oldest retained
  EXPECT_EQ(kept.back().tick, 24u);

  TraceRecorder unbounded;
  EXPECT_EQ(unbounded.capacity(), 0u);
  for (std::uint64_t i = 0; i < 25; ++i) {
    TraceSample s;
    s.tick = i;
    unbounded.record(s);
  }
  EXPECT_EQ(unbounded.size(), 25u);
}

// --- Flight recorder ---------------------------------------------------------

TEST(Obs, FlightRecorderRingAndTriggerSemantics) {
  FlightRecorder flight(128);
  EXPECT_EQ(flight.capacity(), 128u);
  EXPECT_FALSE(flight.triggered());
  EXPECT_TRUE(flight.dump().empty());

  for (std::uint64_t i = 0; i < 300; ++i) {
    FlightFrame f;
    f.sample.tick = i;
    flight.record(f);
  }
  flight.trigger("unit_test", 299);
  ASSERT_TRUE(flight.triggered());
  EXPECT_EQ(flight.reason(), "unit_test");
  EXPECT_EQ(flight.trigger_tick(), 299u);
  EXPECT_EQ(flight.frames_recorded(), 300u);
  ASSERT_EQ(flight.dump().size(), 128u);
  EXPECT_EQ(flight.dump().front().sample.tick, 300u - 128u);  // oldest first
  EXPECT_EQ(flight.dump().back().sample.tick, 299u);

  // Later recording and triggers do not disturb the frozen dump.
  FlightFrame f;
  f.sample.tick = 1000;
  flight.record(f);
  flight.trigger("second", 1000);
  EXPECT_EQ(flight.reason(), "unit_test");
  EXPECT_EQ(flight.trigger_tick(), 299u);
  EXPECT_EQ(flight.triggers(), 2u);
  EXPECT_EQ(flight.dump().back().sample.tick, 299u);

  std::ostringstream os;
  flight.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(contains(json, "\"schema\": \"rg.flight/1\""));
  EXPECT_TRUE(contains(json, "\"reason\": \"unit_test\""));
  const std::string frames = flight.frames_json();
  EXPECT_EQ(frames.front(), '[');
  EXPECT_EQ(frames.back(), ']');
}

TEST(Obs, FlightRecorderDumpsOnDetectorAlarm) {
  // Near-zero thresholds make the first screened motion an alarm; armed
  // mitigation then drives the block + E-STOP path.  The attached flight
  // recorder must freeze on that alarm and the event log must carry the
  // alarm, the mitigation, and the embedded flight dump.
  SessionParams params;
  params.seed = 99;
  params.duration_sec = 4.0;
  DetectionThresholds hair_trigger;
  hair_trigger.motor_vel = hair_trigger.motor_acc = hair_trigger.joint_vel =
      Vec3::filled(1.0e-12);

  SurgicalSim sim(make_session(params, hair_trigger, MitigationMode::kArmed));
  EventLog events;
  FlightRecorder flight(64);
  sim.set_event_log(&events, {{"session", "obs-test"}});
  sim.set_flight_recorder(&flight);
  sim.run(params.duration_sec);

  ASSERT_TRUE(sim.outcome().detector_alarm_tick.has_value());
  ASSERT_TRUE(flight.triggered());
  EXPECT_EQ(flight.reason(), "detector_alarm");
  EXPECT_EQ(flight.trigger_tick(), *sim.outcome().detector_alarm_tick);
  ASSERT_FALSE(flight.dump().empty());
  EXPECT_LE(flight.dump().size(), 64u);
  const FlightFrame& last = flight.dump().back();
  EXPECT_EQ(last.sample.tick, flight.trigger_tick());
  EXPECT_TRUE(last.screened);
  EXPECT_TRUE(last.alarm);

  const std::vector<std::string> lines = events.lines();
  auto count_kind = [&lines](std::string_view kind) {
    const std::string needle = std::string("\"kind\": \"") + std::string(kind) + "\"";
    std::size_t n = 0;
    for (const std::string& line : lines) {
      if (contains(line, needle)) ++n;
    }
    return n;
  };
  EXPECT_GE(count_kind("state_transition"), 1u);
  EXPECT_GE(count_kind("detector_alarm"), 1u);
  EXPECT_GE(count_kind("mitigation"), 1u);
  ASSERT_EQ(count_kind("flight_dump"), 1u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(contains(line, "\"session\": \"obs-test\""));  // context fields
    if (contains(line, "\"kind\": \"flight_dump\"")) {
      EXPECT_TRUE(contains(line, "\"reason\": \"detector_alarm\""));
      EXPECT_TRUE(contains(line, "\"ring\": ["));
    }
  }
}

}  // namespace
}  // namespace rg
