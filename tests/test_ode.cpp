// Unit + property tests for the ODE integrators: convergence orders,
// dispatch, fixed/adaptive integration.
#include <gtest/gtest.h>

#include <cmath>

#include "math/vec.hpp"
#include "ode/integrators.hpp"

namespace rg {
namespace {

// dx/dt = -x, x(0) = 1  =>  x(t) = e^{-t}
const auto kDecay = [](double, const Vec<1>& x) { return Vec<1>{-x[0]}; };

// Harmonic oscillator: x'' = -x as first-order system [x, v].
const auto kOscillator = [](double, const Vec<2>& s) { return Vec<2>{s[1], -s[0]}; };

double decay_error(SolverKind kind, double h) {
  Vec<1> x{1.0};
  x = integrate_fixed(kind, kDecay, 0.0, x, 1.0, h);
  return std::abs(x[0] - std::exp(-1.0));
}

TEST(Integrators, EulerIsFirstOrder) {
  const double e1 = decay_error(SolverKind::kEuler, 0.01);
  const double e2 = decay_error(SolverKind::kEuler, 0.005);
  EXPECT_NEAR(e1 / e2, 2.0, 0.2);  // halving h halves the error
}

TEST(Integrators, MidpointIsSecondOrder) {
  const double e1 = decay_error(SolverKind::kMidpoint, 0.01);
  const double e2 = decay_error(SolverKind::kMidpoint, 0.005);
  EXPECT_NEAR(e1 / e2, 4.0, 0.5);
}

TEST(Integrators, Rk4IsFourthOrder) {
  const double e1 = decay_error(SolverKind::kRk4, 0.02);
  const double e2 = decay_error(SolverKind::kRk4, 0.01);
  EXPECT_NEAR(e1 / e2, 16.0, 3.0);
}

TEST(Integrators, AccuracyRanking) {
  const double h = 0.01;
  const double euler = decay_error(SolverKind::kEuler, h);
  const double mid = decay_error(SolverKind::kMidpoint, h);
  const double rk4 = decay_error(SolverKind::kRk4, h);
  EXPECT_GT(euler, mid);
  EXPECT_GT(mid, rk4);
}

TEST(Integrators, Rkf45FixedStepAccurate) {
  EXPECT_LT(decay_error(SolverKind::kRkf45, 0.01), 1e-10);
}

TEST(Integrators, Rkf45ErrorEstimatePositiveAndSmall) {
  const Vec<1> x{1.0};
  const auto [x5, err] = rkf45_step<Vec<1>>(kDecay, 0.0, x, 0.01);
  EXPECT_GT(err, 0.0);
  EXPECT_LT(err, 1e-8);
  EXPECT_NEAR(x5[0], std::exp(-0.01), 1e-10);
}

TEST(Integrators, OscillatorEnergyConservationRk4) {
  Vec<2> s{1.0, 0.0};
  s = integrate_fixed(SolverKind::kRk4, kOscillator, 0.0, s, 2.0 * 3.14159265358979, 0.001);
  // One full period returns to the start.
  EXPECT_NEAR(s[0], 1.0, 1e-8);
  EXPECT_NEAR(s[1], 0.0, 1e-8);
}

TEST(Integrators, OscillatorEulerGainsEnergy) {
  // Explicit Euler spirals outward on a pure oscillator — a well-known
  // property that motivates damping in the robot model.
  Vec<2> s{1.0, 0.0};
  s = integrate_fixed(SolverKind::kEuler, kOscillator, 0.0, s, 10.0, 0.01);
  const double energy = s[0] * s[0] + s[1] * s[1];
  EXPECT_GT(energy, 1.0);
}

TEST(Integrators, FixedStepHandlesPartialFinalStep) {
  // duration not a multiple of h: must land exactly on t_end.
  Vec<1> x{1.0};
  x = integrate_fixed(SolverKind::kRk4, kDecay, 0.0, x, 0.35, 0.1);
  EXPECT_NEAR(x[0], std::exp(-0.35), 1e-6);
}

TEST(Integrators, FixedStepZeroDurationIsIdentity) {
  Vec<1> x{2.5};
  x = integrate_fixed(SolverKind::kEuler, kDecay, 0.0, x, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(x[0], 2.5);
}

TEST(Integrators, FixedStepValidation) {
  Vec<1> x{1.0};
  EXPECT_THROW((void)integrate_fixed(SolverKind::kEuler, kDecay, 0.0, x, 1.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_fixed(SolverKind::kEuler, kDecay, 0.0, x, -1.0, 0.1),
               std::invalid_argument);
}

TEST(Integrators, AdaptiveMatchesAnalytic) {
  Vec<1> x{1.0};
  x = integrate_adaptive(kDecay, 0.0, x, 2.0, 1e-10, 0.1, 1e-6, 0.5);
  EXPECT_NEAR(x[0], std::exp(-2.0), 1e-8);
}

TEST(Integrators, AdaptiveValidation) {
  Vec<1> x{1.0};
  EXPECT_THROW((void)integrate_adaptive(kDecay, 0.0, x, 1.0, 0.0, 0.1, 1e-6, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_adaptive(kDecay, 0.0, x, 1.0, 1e-8, 0.1, 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_adaptive(kDecay, 0.0, x, 1.0, 1e-8, 0.1, 1e-3, 1e-4),
               std::invalid_argument);
}

TEST(Integrators, SolverNames) {
  EXPECT_EQ(to_string(SolverKind::kEuler), "Euler");
  EXPECT_EQ(to_string(SolverKind::kRk4), "RK4");
  EXPECT_EQ(to_string(SolverKind::kMidpoint), "Midpoint");
  EXPECT_EQ(to_string(SolverKind::kRkf45), "RKF45");
}

// Property sweep: every solver must agree with the analytic solution as
// h -> 0 on the decay problem.
class SolverConvergence : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverConvergence, ConvergesToAnalyticSolution) {
  EXPECT_LT(decay_error(GetParam(), 0.0005), 1e-3);
}

TEST_P(SolverConvergence, SingleStepMatchesDispatch) {
  const Vec<1> x{1.0};
  const Vec<1> via_dispatch = solver_step(GetParam(), kDecay, 0.0, x, 0.01);
  Vec<1> direct{};
  switch (GetParam()) {
    case SolverKind::kEuler: direct = euler_step<Vec<1>>(kDecay, 0.0, x, 0.01); break;
    case SolverKind::kMidpoint: direct = midpoint_step<Vec<1>>(kDecay, 0.0, x, 0.01); break;
    case SolverKind::kRk4: direct = rk4_step<Vec<1>>(kDecay, 0.0, x, 0.01); break;
    case SolverKind::kRkf45: direct = rkf45_step<Vec<1>>(kDecay, 0.0, x, 0.01).first; break;
  }
  EXPECT_DOUBLE_EQ(via_dispatch[0], direct[0]);
}

std::string solver_test_name(const ::testing::TestParamInfo<SolverKind>& param_info) {
  return std::string{to_string(param_info.param)};
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, SolverConvergence,
                         ::testing::Values(SolverKind::kEuler, SolverKind::kMidpoint,
                                           SolverKind::kRk4, SolverKind::kRkf45),
                         solver_test_name);

}  // namespace
}  // namespace rg
