// Crash-consistent state plane tests: CRC32C framing, record scan tail
// classification, flock single-writer discipline, snapshot+WAL store
// round-trips and every fail-safe reason, StatePlane submit/flush/restore,
// the ThresholdStore corrupt-tail matrix, and the gateway-level
// restore-rejects-replays / E-STOP-latch / fail-safe contracts
// (docs/persistence.md).  scripts/fault_matrix.sh drives the same
// contracts from outside the process with real SIGKILLs; these are the
// in-process, single-failure-at-a-time versions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/thresholds.hpp"
#include "net/itp_packet.hpp"
#include "persist/crc32c.hpp"
#include "persist/file_lock.hpp"
#include "persist/record.hpp"
#include "persist/recovery.hpp"
#include "persist/state_plane.hpp"
#include "persist/statestore.hpp"
#include "sim/threshold_store.hpp"
#include "svc/gateway.hpp"
#include "svc/session.hpp"
#include "svc/transport.hpp"

namespace rg {
namespace {

namespace fs = std::filesystem;
using persist::crc32c;
using persist::PersistentState;
using persist::RecoveryOutcome;
using persist::RecoveryResult;
using persist::recover_state;
using persist::ScanResult;
using persist::StateStore;
using persist::TailState;
using persist::WalKind;

/// Fresh scratch directory under /tmp, removed on destruction.
struct ScratchDir {
  explicit ScratchDir(const std::string& name) : path("/tmp/rg_test_persist_" + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  // rg-lint: allow(cast) -- byte->char view for ostream::write
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

// --- CRC32C ---------------------------------------------------------------

TEST(PersistCrc32c, KnownAnswerAndChaining) {
  // The canonical CRC32C check value (RFC 3720 appendix / "123456789").
  const auto check = bytes_of("123456789");
  EXPECT_EQ(crc32c(check.data(), check.size()), 0xE3069283u);
  EXPECT_EQ(crc32c(nullptr, 0), 0u);

  // Chaining over split buffers equals one pass over the whole.
  const auto whole = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t one_pass = crc32c(whole.data(), whole.size());
  for (std::size_t cut = 0; cut <= whole.size(); cut += 7) {
    const std::uint32_t head = crc32c(whole.data(), cut);
    EXPECT_EQ(crc32c(whole.data() + cut, whole.size() - cut, head), one_pass);
  }

  // Any single-bit flip changes the checksum.
  auto flipped = check;
  flipped[4] ^= 0x10;
  EXPECT_NE(crc32c(flipped.data(), flipped.size()), 0xE3069283u);
}

// --- record framing + tail classification ---------------------------------

std::vector<std::uint8_t> five_records() {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t lsn = 1; lsn <= 5; ++lsn) {
    std::vector<std::uint8_t> payload(3 + lsn, static_cast<std::uint8_t>(0xA0 + lsn));
    persist::encode_record(buf, lsn, static_cast<std::uint8_t>(lsn), payload);
  }
  return buf;
}

TEST(PersistRecord, EncodeScanRoundTrip) {
  const auto buf = five_records();
  std::vector<persist::RecordView> seen;
  const ScanResult r = persist::scan_records(buf, 0, 1,
                                             [&](const persist::RecordView& rec) {
                                               seen.push_back(rec);
                                             });
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.last_lsn, 5u);
  EXPECT_EQ(r.valid_bytes, buf.size());
  EXPECT_EQ(r.tail, TailState::kClean);
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].lsn, i + 1);
    EXPECT_EQ(seen[i].kind, i + 1);
    EXPECT_EQ(seen[i].payload.size(), 4 + i);
    EXPECT_EQ(seen[i].payload[0], 0xA1 + i);
  }

  // encode_record_into produces byte-identical frames.
  std::vector<std::uint8_t> payload(7, 0x5A);
  std::vector<std::uint8_t> a;
  persist::encode_record(a, 9, 2, payload);
  std::vector<std::uint8_t> b(persist::kRecordHeaderSize + payload.size());
  persist::encode_record_into(b.data(), 9, 2, payload);
  EXPECT_EQ(a, b);
}

TEST(PersistRecord, ZeroPaddingIsCleanTail) {
  auto buf = five_records();
  const std::size_t valid = buf.size();
  buf.resize(buf.size() + 4096, 0);  // preallocated-file padding
  const ScanResult r = persist::scan_records(buf, 0, 1, nullptr);
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.valid_bytes, valid);
  EXPECT_EQ(r.tail, TailState::kClean);
}

TEST(PersistRecord, TornTailIsBenign) {
  auto buf = five_records();
  const std::size_t valid = buf.size();
  // A torn final append: garbage that never parses into a frame.
  for (int i = 0; i < 11; ++i) buf.push_back(0xFF);
  const ScanResult r = persist::scan_records(buf, 0, 1, nullptr);
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.valid_bytes, valid);
  EXPECT_EQ(r.tail, TailState::kTornTail);
}

TEST(PersistRecord, DuplicateTailIsBenign) {
  auto buf = five_records();
  const std::size_t valid = buf.size();
  // Re-append the final frame verbatim: parses, but its LSN does not
  // advance past the prefix — a crash artifact, not interior damage.
  std::vector<std::uint8_t> last;
  persist::encode_record(last, 5, 5, std::vector<std::uint8_t>(8, 0xA5));
  buf.insert(buf.end(), last.begin(), last.end());
  const ScanResult r = persist::scan_records(buf, 0, 1, nullptr);
  EXPECT_EQ(r.records, 5u);
  EXPECT_EQ(r.valid_bytes, valid);
  EXPECT_NE(r.tail, TailState::kCorruptInterior);
}

TEST(PersistRecord, InteriorBitflipClassifiedCorrupt) {
  auto buf = five_records();
  // Damage record 2's payload: records 3..5 still parse with advancing
  // LSNs beyond the now-shortened prefix — interior damage, fail safe.
  buf[persist::kRecordHeaderSize * 2 + 8] ^= 0x01;
  const ScanResult r = persist::scan_records(buf, 0, 1, nullptr);
  EXPECT_EQ(r.records, 1u);
  EXPECT_EQ(r.tail, TailState::kCorruptInterior);
}

TEST(PersistRecord, LsnGapClassifiedCorrupt) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint8_t> p(4, 0x11);
  persist::encode_record(buf, 1, 1, p);
  persist::encode_record(buf, 2, 1, p);
  persist::encode_record(buf, 4, 1, p);  // lsn 3 missing
  const ScanResult r = persist::scan_records(buf, 0, 1, nullptr);
  EXPECT_EQ(r.records, 2u);
  EXPECT_EQ(r.last_lsn, 2u);
  EXPECT_EQ(r.tail, TailState::kCorruptInterior);
}

// --- FileLock --------------------------------------------------------------

TEST(PersistFileLock, ExclusiveExcludesAndReleases) {
  ScratchDir dir("flock");
  const std::string path = dir.path + "/store.lock";

  auto first = persist::FileLock::acquire(path, persist::FileLock::Mode::kExclusive);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().held());

  // A second (separate fd, same process) non-blocking acquire must fail.
  auto second =
      persist::FileLock::acquire(path, persist::FileLock::Mode::kExclusive, /*block=*/false);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code(), ErrorCode::kNotReady);

  first.value().release();
  EXPECT_FALSE(first.value().held());
  auto third =
      persist::FileLock::acquire(path, persist::FileLock::Mode::kExclusive, /*block=*/false);
  EXPECT_TRUE(third.ok());
}

TEST(PersistFileLock, SharedCoexistsExclusiveWaits) {
  ScratchDir dir("flock_shared");
  const std::string path = dir.path + "/store.lock";

  auto a = persist::FileLock::acquire(path, persist::FileLock::Mode::kShared, false);
  auto b = persist::FileLock::acquire(path, persist::FileLock::Mode::kShared, false);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  auto writer =
      persist::FileLock::acquire(path, persist::FileLock::Mode::kExclusive, false);
  EXPECT_FALSE(writer.ok());

  a.value().release();
  b.value().release();
  auto now_ok =
      persist::FileLock::acquire(path, persist::FileLock::Mode::kExclusive, false);
  EXPECT_TRUE(now_ok.ok());

  // Move transfers ownership; the source no longer holds.
  persist::FileLock moved = std::move(now_ok.value());
  EXPECT_TRUE(moved.held());
  EXPECT_FALSE(now_ok.value().held());
}

// --- StateStore round-trips -------------------------------------------------

/// Drive a store through a representative mutation mix.
void mutate_store(StateStore& store) {
  ASSERT_TRUE(store.note_open(1, 0x0a000001u, 20000).ok());
  ASSERT_TRUE(store.note_open(2, 0x0a000002u, 20001).ok());
  ASSERT_TRUE(store.note_window(1, 42, 0x1fffull, true).ok());
  ASSERT_TRUE(store.note_window(2, 7, 0x3ull, true).ok());
  ASSERT_TRUE(store.note_estop(2, true).ok());
  ASSERT_TRUE(store.note_epoch(3, 0xDEADBEEFCAFEull).ok());
  ASSERT_TRUE(store.note_sketch(0x1234ull, 600).ok());
  ASSERT_TRUE(store.note_close(2).ok());
}

TEST(PersistStateStore, WalRoundTripRestoresExactState) {
  ScratchDir dir("wal_roundtrip");
  StateStore store(dir.path);
  ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
  mutate_store(store);
  ASSERT_TRUE(store.sync().ok());

  const RecoveryResult r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kRestored);
  EXPECT_EQ(r.wal_records_applied, 8u);
  EXPECT_EQ(r.digest, store.state().digest());
  EXPECT_EQ(r.last_lsn, store.last_lsn());
  EXPECT_EQ(r.wal_tail, TailState::kClean);
  ASSERT_EQ(r.state.sessions.size(), 1u);  // session 2 closed
  const persist::PersistedSession& s = r.state.sessions.at(1);
  EXPECT_EQ(s.ip, 0x0a000001u);
  EXPECT_EQ(s.port, 20000);
  EXPECT_EQ(s.newest, 42u);
  EXPECT_EQ(s.mask, 0x1fffull);
  EXPECT_TRUE(s.started);
  EXPECT_FALSE(s.estop);
  EXPECT_EQ(r.state.next_session_id, 3u);
  EXPECT_EQ(r.state.epoch_id, 3u);
  EXPECT_EQ(r.state.sketch_samples, 600u);
}

TEST(PersistStateStore, RotationThenAppendRecovers) {
  // Regression: write_snapshot truncates the WAL but must also rewind the
  // file offset — without the rewind, post-rotation appends left a zero
  // hole at the WAL head and recovery failed safe on interior corruption.
  ScratchDir dir("rotate_append");
  StateStore store(dir.path);
  ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
  mutate_store(store);
  ASSERT_TRUE(store.write_snapshot().ok());
  EXPECT_EQ(store.stats().snapshots, 1u);

  // Mutations after the rotation continue the LSN chain in a fresh WAL.
  ASSERT_TRUE(store.note_open(5, 0x0a000005u, 20005).ok());
  ASSERT_TRUE(store.note_window(5, 9, 0x1ull, true).ok());
  ASSERT_TRUE(store.sync().ok());

  const RecoveryResult r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kRestored);
  EXPECT_TRUE(r.snapshot_loaded);
  EXPECT_EQ(r.wal_records_applied, 2u);
  EXPECT_EQ(r.digest, store.state().digest());
  EXPECT_EQ(r.state.sessions.count(5), 1u);
  EXPECT_EQ(r.last_lsn, store.last_lsn());
}

TEST(PersistStateStore, TornWalTailRestoresDurablePrefix) {
  ScratchDir dir("torn_tail");
  std::uint64_t full_digest = 0;
  {
    StateStore store(dir.path);
    ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
    mutate_store(store);
    ASSERT_TRUE(store.sync().ok());
    full_digest = store.state().digest();
  }
  const RecoveryResult full = recover_state(dir.path, {.collect_prefix_digests = true});
  ASSERT_EQ(full.outcome, RecoveryOutcome::kRestored);
  const std::set<std::uint64_t> prefix_set(full.prefix_digests.begin(),
                                           full.prefix_digests.end());

  // Chop mid-way through the final record: the torn tail truncates to the
  // previous durable record, whose digest is in the full run's prefix set.
  const std::string wal = StateStore::wal_path(dir.path);
  auto bytes = read_bytes(wal);
  bytes.resize(bytes.size() - 5);
  write_bytes(wal, bytes);

  const RecoveryResult r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kRestored);
  EXPECT_EQ(r.wal_records_applied, 7u);
  EXPECT_EQ(r.wal_tail, TailState::kTornTail);
  EXPECT_NE(r.digest, full_digest);
  EXPECT_EQ(prefix_set.count(r.digest), 1u);
}

TEST(PersistStateStore, WalFailSafeReasons) {
  // Orphan head: no snapshot, but the WAL starts past LSN 1 — a gap no
  // crash can produce.
  {
    ScratchDir dir("orphan_head");
    std::vector<std::uint8_t> wal;
    std::vector<std::uint8_t> payload(10, 0);  // open body ...
    PersistentState st;
    ASSERT_TRUE(StateStore::apply_record(st, WalKind::kSessionOpen, payload).ok());
    const std::uint64_t digest = st.digest();
    payload.resize(18);
    std::memcpy(payload.data() + 10, &digest, 8);
    persist::encode_record(wal, 5, static_cast<std::uint8_t>(WalKind::kSessionOpen), payload);
    write_bytes(StateStore::wal_path(dir.path), wal);
    const RecoveryResult r = recover_state(dir.path);
    EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
    EXPECT_EQ(r.reason, "wal_orphan_head");
  }

  // Digest mismatch: CRC-valid frame whose carried state digest does not
  // match the replayed state — bytes intact, state never persisted.
  {
    ScratchDir dir("digest_mismatch");
    std::vector<std::uint8_t> wal;
    std::vector<std::uint8_t> payload(18, 0);
    payload[0] = 1;  // session id 1, bogus trailing digest (zeros)
    persist::encode_record(wal, 1, static_cast<std::uint8_t>(WalKind::kSessionOpen), payload);
    write_bytes(StateStore::wal_path(dir.path), wal);
    const RecoveryResult r = recover_state(dir.path);
    EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
    EXPECT_EQ(r.reason, "wal_digest_mismatch");
  }

  // Malformed record: body size does not match the kind.
  {
    ScratchDir dir("malformed");
    std::vector<std::uint8_t> wal;
    const std::vector<std::uint8_t> payload(13, 0);  // 5-byte body + 8 digest: wrong for kOpen
    persist::encode_record(wal, 1, static_cast<std::uint8_t>(WalKind::kSessionOpen), payload);
    write_bytes(StateStore::wal_path(dir.path), wal);
    const RecoveryResult r = recover_state(dir.path);
    EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
    EXPECT_EQ(r.reason, "wal_malformed_record");
  }

  // Payload too small to even carry a digest.
  {
    ScratchDir dir("tiny");
    std::vector<std::uint8_t> wal;
    const std::vector<std::uint8_t> payload(4, 0);
    persist::encode_record(wal, 1, static_cast<std::uint8_t>(WalKind::kSessionOpen), payload);
    write_bytes(StateStore::wal_path(dir.path), wal);
    const RecoveryResult r = recover_state(dir.path);
    EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
    EXPECT_EQ(r.reason, "wal_malformed_record");
  }

  // Interior bitflip with valid frames beyond.
  {
    ScratchDir dir("interior");
    {
      StateStore store(dir.path);
      ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
      mutate_store(store);
      ASSERT_TRUE(store.sync().ok());
    }
    const std::string wal = StateStore::wal_path(dir.path);
    auto bytes = read_bytes(wal);
    bytes[persist::kRecordHeaderSize + 2] ^= 0x40;  // first record's payload
    write_bytes(wal, bytes);
    const RecoveryResult r = recover_state(dir.path);
    EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
    EXPECT_EQ(r.reason, "wal_interior_corrupt");
  }
}

TEST(PersistStateStore, SnapshotFailSafeReasons) {
  ScratchDir dir("snap_corrupt");
  {
    StateStore store(dir.path);
    ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
    mutate_store(store);
    ASSERT_TRUE(store.write_snapshot().ok());
  }
  const std::string snap = StateStore::snapshot_path(dir.path);
  const auto pristine = read_bytes(snap);
  ASSERT_GT(pristine.size(), 80u);

  ASSERT_EQ(recover_state(dir.path).outcome, RecoveryOutcome::kRestored);

  // Interior bitflip -> CRC.
  auto flipped = pristine;
  flipped[40] ^= 0x08;
  write_bytes(snap, flipped);
  RecoveryResult r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
  EXPECT_EQ(r.reason, "snapshot_crc");

  // Severed below the fixed head -> truncated.
  auto short_bytes = pristine;
  short_bytes.resize(10);
  write_bytes(snap, short_bytes);
  r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
  EXPECT_EQ(r.reason, "snapshot_truncated");

  // Wrong magic -> a foreign file, not ours to interpret.
  auto foreign = pristine;
  foreign[0] ^= 0xFF;
  write_bytes(snap, foreign);
  r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFailSafe);
  EXPECT_EQ(r.reason, "snapshot_magic");

  // Restoring the pristine bytes recovers again — fail-safe never
  // modified the artifacts.
  write_bytes(snap, pristine);
  EXPECT_EQ(recover_state(dir.path).outcome, RecoveryOutcome::kRestored);
}

TEST(PersistStateStore, EmptyAndFreshOutcomes) {
  ScratchDir dir("fresh");
  RecoveryResult r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFresh);
  EXPECT_EQ(r.state.sessions.size(), 0u);

  // An empty WAL file is still a first boot.
  write_bytes(StateStore::wal_path(dir.path), {});
  r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFresh);

  // A torn very-first append (no complete record) is a fresh store too.
  write_bytes(StateStore::wal_path(dir.path), std::vector<std::uint8_t>(9, 0xEE));
  r = recover_state(dir.path);
  EXPECT_EQ(r.outcome, RecoveryOutcome::kFresh);
}

TEST(PersistStateStore, ApplyRecordRejectsUnknownKind) {
  PersistentState st;
  const std::vector<std::uint8_t> body(4, 0);
  EXPECT_FALSE(StateStore::apply_record(st, static_cast<WalKind>(99), body).ok());
}

// --- StatePlane -------------------------------------------------------------

persist::StatePlaneConfig plane_config(const std::string& dir) {
  persist::StatePlaneConfig pc;
  pc.dir = dir;
  pc.start_flusher = false;       // tests drive flush_now() deterministically
  pc.journal_max_bytes = 1 << 20;  // keep the sparse journal copyable
  return pc;
}

TEST(PersistStatePlane, SubmitFlushRestoreCycle) {
  ScratchDir dir("plane_cycle");
  std::uint64_t digest = 0;
  {
    auto opened = persist::StatePlane::open(plane_config(dir.path));
    ASSERT_TRUE(opened.ok());
    persist::StatePlane& plane = *opened.value();
    EXPECT_EQ(plane.recovery().outcome, RecoveryOutcome::kFresh);

    persist::StateOp open_op;
    open_op.kind = persist::StateOp::Kind::kOpen;
    open_op.session = 1;
    open_op.ip = 0x0a000001u;
    open_op.port = 20000;
    EXPECT_TRUE(plane.submit(open_op));

    persist::StateOp window;
    window.kind = persist::StateOp::Kind::kWindow;
    window.session = 1;
    window.newest = 99;
    window.mask = 0x7ull;
    window.flag = 1;
    EXPECT_TRUE(plane.submit(window));

    persist::StateOp epoch;
    epoch.kind = persist::StateOp::Kind::kEpoch;
    epoch.a = 11;
    epoch.b = 0xFEEDull;
    EXPECT_TRUE(plane.submit(epoch));

    plane.flush_now();
    digest = plane.state_digest();
    const persist::StatePlaneStats stats = plane.stats();
    EXPECT_EQ(stats.ops_submitted, 3u);
    EXPECT_EQ(stats.ops_applied, 3u);
    EXPECT_EQ(stats.ops_dropped, 0u);
    EXPECT_GE(stats.store.wal_records, 3u);
    plane.stop();
  }
  auto reopened = persist::StatePlane::open(plane_config(dir.path));
  ASSERT_TRUE(reopened.ok());
  persist::StatePlane& plane = *reopened.value();
  EXPECT_EQ(plane.recovery().outcome, RecoveryOutcome::kRestored);
  EXPECT_EQ(plane.recovery().digest, digest);
  const PersistentState st = plane.state();
  ASSERT_EQ(st.sessions.count(1), 1u);
  EXPECT_EQ(st.sessions.at(1).newest, 99u);
  EXPECT_EQ(st.epoch_id, 11u);
  plane.stop();
}

TEST(PersistStatePlane, FailSafePlaneRefusesWrites) {
  ScratchDir dir("plane_failsafe");
  {
    auto opened = persist::StatePlane::open(plane_config(dir.path));
    ASSERT_TRUE(opened.ok());
    persist::StateOp op;
    op.kind = persist::StateOp::Kind::kOpen;
    op.session = 1;
    opened.value()->submit(op);
    op.kind = persist::StateOp::Kind::kWindow;
    op.newest = 5;
    op.flag = 1;
    opened.value()->submit(op);
    opened.value()->flush_now();
    opened.value()->stop();
  }
  // Interior damage: valid frame beyond a corrupted first record.
  const std::string wal = StateStore::wal_path(dir.path);
  auto bytes = read_bytes(wal);
  ASSERT_GT(bytes.size(), persist::kRecordHeaderSize * 2);
  bytes[persist::kRecordHeaderSize - 1] ^= 0x01;
  write_bytes(wal, bytes);
  const auto before = read_bytes(wal);

  auto opened = persist::StatePlane::open(plane_config(dir.path));
  ASSERT_TRUE(opened.ok());
  persist::StatePlane& plane = *opened.value();
  EXPECT_TRUE(plane.fail_safe());
  EXPECT_EQ(plane.recovery().reason, "wal_interior_corrupt");

  persist::StateOp op;
  op.kind = persist::StateOp::Kind::kWindow;
  op.session = 1;
  EXPECT_FALSE(plane.submit(op));
  plane.flush_now();
  plane.stop();
  EXPECT_GT(plane.stats().ops_dropped, 0u);
  // Evidence preserved: the damaged WAL is byte-identical.
  EXPECT_EQ(read_bytes(wal), before);
}

TEST(PersistStatePlane, RingFullDropsAreCounted) {
  ScratchDir dir("plane_ring");
  persist::StatePlaneConfig pc = plane_config(dir.path);
  pc.ring_capacity = 16;
  auto opened = persist::StatePlane::open(pc);
  ASSERT_TRUE(opened.ok());
  persist::StatePlane& plane = *opened.value();
  persist::StateOp op;
  op.kind = persist::StateOp::Kind::kWindow;
  op.session = 1;
  op.flag = 1;
  std::uint64_t refused = 0;
  for (int i = 0; i < 100; ++i) {
    op.newest = static_cast<std::uint32_t>(i);
    if (!plane.submit(op)) ++refused;
  }
  EXPECT_GT(refused, 0u);
  const persist::StatePlaneStats stats = plane.stats();
  EXPECT_EQ(stats.ops_dropped, refused);
  EXPECT_EQ(stats.ops_submitted, 100u - refused);
  plane.stop();
}

// --- ReplayWindow persisted round-trip (property) ---------------------------

TEST(PersistReplayWindow, RestoredWindowRejectsEverythingItEverAccepted) {
  // Property: evolve a window with a random accept pattern, persist its
  // state at a random intermediate point (the last durable flush), keep
  // accepting a bounded "unsynced tail" (< guard), then restore.  Every
  // sequence number the original window EVER accepted — durable or not —
  // must be rejected by the restored window, and fresh traffic past the
  // guard band must be accepted.
  constexpr std::uint32_t kGuard = 256;
  Pcg32 rng(20260807);
  for (int trial = 0; trial < 200; ++trial) {
    svc::ReplayWindow live;
    std::vector<std::uint32_t> accepted;
    std::uint32_t seq = 1 + rng.uniform_int(0, 1000);

    const auto feed = [&](int steps, std::uint32_t max_advance) {
      for (int i = 0; i < steps; ++i) {
        // Mostly advance; sometimes probe a recent (possibly accepted)
        // number to exercise out-of-order accepts.
        std::uint32_t probe;
        if (rng.uniform_int(0, 9) < 8 || seq < 70) {
          seq += 1 + rng.uniform_int(0, max_advance - 1);
          probe = seq;
        } else {
          probe = seq - rng.uniform_int(1, 60);
        }
        if (live.check_and_update(probe).verdict == svc::IngestVerdict::kAccepted) {
          accepted.push_back(probe);
        }
      }
    };

    feed(40, 8);
    // Durable flush point.
    const std::uint32_t persisted_newest = live.newest();
    const std::uint64_t persisted_mask = live.mask();
    const bool persisted_started = live.started();
    // Unsynced tail: bounded so newest never outruns the guard band.
    feed(20, 4);
    ASSERT_LT(live.newest() - persisted_newest, kGuard);

    svc::ReplayWindow restored;
    restored.restore(persisted_newest, persisted_mask, persisted_started, kGuard);
    for (const std::uint32_t s : accepted) {
      const svc::IngestVerdict v = restored.check_and_update(s).verdict;
      EXPECT_NE(v, svc::IngestVerdict::kAccepted)
          << "trial " << trial << " seq " << s << " replayed into restored window";
    }
    // The guard band itself is sealed...
    EXPECT_NE(restored.check_and_update(persisted_newest + kGuard).verdict,
              svc::IngestVerdict::kAccepted);
    // ...and the first sequence past it flows.
    EXPECT_EQ(restored.check_and_update(persisted_newest + kGuard + 1).verdict,
              svc::IngestVerdict::kAccepted);
  }
}

TEST(PersistReplayWindow, GuardZeroRestoresVerbatim) {
  svc::ReplayWindow w;
  ASSERT_EQ(w.check_and_update(10).verdict, svc::IngestVerdict::kAccepted);
  ASSERT_EQ(w.check_and_update(12).verdict, svc::IngestVerdict::kAccepted);

  svc::ReplayWindow r;
  r.restore(w.newest(), w.mask(), w.started(), 0);
  EXPECT_EQ(r.newest(), w.newest());
  EXPECT_EQ(r.mask(), w.mask());
  EXPECT_EQ(r.check_and_update(12).verdict, svc::IngestVerdict::kDuplicate);
  EXPECT_EQ(r.check_and_update(10).verdict, svc::IngestVerdict::kReplayed);
  EXPECT_EQ(r.check_and_update(11).verdict, svc::IngestVerdict::kAccepted);

  svc::ReplayWindow fresh;
  fresh.restore(0, 0, /*started=*/false, 256);
  EXPECT_FALSE(fresh.started());
  EXPECT_EQ(fresh.check_and_update(1).verdict, svc::IngestVerdict::kAccepted);
}

// --- ThresholdStore corrupt-tail matrix -------------------------------------

DetectionThresholds epoch_thresholds(int i) {
  DetectionThresholds th;
  const double base = 1.0 + i;
  th.motor_vel = Vec3{base, base + 0.25, base + 0.5};
  th.motor_acc = Vec3{10 * base, 10 * base + 1, 10 * base + 2};
  th.joint_vel = Vec3{0.1 * base, 0.1 * base + 0.01, 0.1 * base + 0.02};
  return th;
}

bool thresholds_equal(const DetectionThresholds& a, const DetectionThresholds& b) {
  for (std::size_t k = 0; k < 3; ++k) {
    if (a.motor_vel[k] != b.motor_vel[k] || a.motor_acc[k] != b.motor_acc[k] ||
        a.joint_vel[k] != b.joint_vel[k]) {
      return false;
    }
  }
  return true;
}

TEST(PersistThresholdStore, TruncationMatrixNeverServesTornThresholds) {
  ScratchDir dir("th_truncate");
  const std::string path = dir.path + "/thresholds.txt";
  std::vector<DetectionThresholds> committed;
  {
    ThresholdStore store(path);
    for (int i = 0; i < 3; ++i) {
      committed.push_back(epoch_thresholds(i));
      ASSERT_TRUE(store.commit(committed.back(), {"matrix-test", 600, 99.85, 1.0}).ok());
    }
  }
  std::string pristine;
  {
    std::ifstream is(path);
    std::getline(is, pristine, '\0');
  }
  ASSERT_FALSE(pristine.empty());

  // Truncate at every line boundary and at ragged offsets around them.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    if (pristine[i] == '\n') {
      cuts.push_back(i + 1);
      if (i > 2) cuts.push_back(i - 2);
    }
  }
  for (const std::size_t cut : cuts) {
    {
      std::ofstream os(path, std::ios::trunc);
      os << pristine.substr(0, cut);
    }
    ThresholdStore store(path);
    const auto active = store.active();
    if (active.ok()) {
      // Whatever loads must be one of the exact committed epochs — a
      // valid shorter history, never a torn or bit-rotted record.
      bool matched = false;
      for (const DetectionThresholds& th : committed) {
        matched = matched || thresholds_equal(active.value().thresholds, th);
      }
      EXPECT_TRUE(matched) << "cut at " << cut << " served thresholds never committed";
    } else {
      EXPECT_TRUE(active.error().code() == ErrorCode::kMalformedPacket ||
                  active.error().code() == ErrorCode::kNotReady)
          << "cut at " << cut << ": " << active.error().message();
    }
  }

  // The intact file still serves the newest epoch.
  {
    std::ofstream os(path, std::ios::trunc);
    os << pristine;
  }
  ThresholdStore store(path);
  ASSERT_TRUE(store.active().ok());
  EXPECT_TRUE(thresholds_equal(store.active().value().thresholds, committed.back()));
}

TEST(PersistThresholdStore, BitRotIsCaughtByRecordCrc) {
  ScratchDir dir("th_bitrot");
  const std::string path = dir.path + "/thresholds.txt";
  {
    ThresholdStore store(path);
    ASSERT_TRUE(store.commit(epoch_thresholds(0), {}).ok());
  }
  std::string text;
  {
    std::ifstream is(path);
    std::getline(is, text, '\0');
  }
  // Nudge one digit inside the value payload: the line still parses, but
  // the record's CRC no longer matches — the store must refuse to serve
  // silently altered thresholds.
  const std::size_t digit = text.find("1.25");
  ASSERT_NE(digit, std::string::npos);
  text[digit] = '9';
  {
    std::ofstream os(path, std::ios::trunc);
    os << text;
  }
  ThresholdStore store(path);
  const auto active = store.active();
  ASSERT_FALSE(active.ok());
  EXPECT_EQ(active.error().code(), ErrorCode::kMalformedPacket);
}

TEST(PersistThresholdStore, ConcurrentCommitsSerializeUnderFlock) {
  ScratchDir dir("th_flock");
  const std::string path = dir.path + "/thresholds.txt";
  constexpr int kPerThread = 8;
  const auto committer = [&path](int salt) {
    ThresholdStore store(path);
    for (int i = 0; i < kPerThread; ++i) {
      ASSERT_TRUE(store.commit(epoch_thresholds(salt * 100 + i), {"flock-test"}).ok());
    }
  };
  std::thread a(committer, 1);
  std::thread b(committer, 2);
  a.join();
  b.join();

  ThresholdStore store(path);
  const auto history = store.history();
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history.value().size(), 2u * kPerThread);
  ASSERT_TRUE(store.active().ok());
  // Epoch ids are dense and unique despite the interleaving.
  std::set<std::uint64_t> ids;
  for (const auto& e : history.value()) ids.insert(e.id);
  EXPECT_EQ(ids.size(), 2u * kPerThread);
}

// --- gateway-level crash consistency ----------------------------------------

svc::Endpoint gw_ep(std::uint16_t port) { return svc::Endpoint{0x0a000001u, port}; }

ItpBytes gw_packet(std::uint32_t seq) {
  ItpPacket pkt;
  pkt.sequence = seq;
  pkt.pedal_down = true;
  return encode_itp(pkt);
}

void gw_inject(svc::LoopbackTransport& transport, const svc::Endpoint& from,
               std::uint32_t seq) {
  const ItpBytes bytes = gw_packet(seq);
  transport.inject(from, std::span<const std::uint8_t>{bytes});
}

svc::GatewayConfig gw_config(persist::StatePlane* plane) {
  svc::GatewayConfig cfg;
  cfg.shards = 1;
  cfg.threaded = false;
  cfg.idle_timeout_ms = 1u << 30;
  cfg.persist = plane;
  return cfg;
}

void gw_pump_all(svc::TeleopGateway& gateway, svc::LoopbackTransport& transport,
                 std::uint64_t now_ms) {
  while (transport.pending() > 0) (void)gateway.pump(now_ms);
  gateway.drain();
}

TEST(GatewayPersist, RestartRestoresSessionsAndRejectsReplays) {
  ScratchDir dir("gw_restart");
  ScratchDir crash("gw_restart_crash");
  std::uint64_t durable_digest = 0;
  {
    auto opened = persist::StatePlane::open(plane_config(dir.path));
    ASSERT_TRUE(opened.ok());
    persist::StatePlane& plane = *opened.value();
    svc::LoopbackTransport transport;
    svc::TeleopGateway gateway(gw_config(&plane), transport);
    for (std::uint32_t seq = 1; seq <= 20; ++seq) {
      gw_inject(transport, gw_ep(20000), seq);
      gw_inject(transport, gw_ep(20001), seq);
    }
    gw_pump_all(gateway, transport, 1);
    const svc::GatewayStats stats = gateway.stats();
    EXPECT_EQ(stats.accepted, 40u);
    EXPECT_EQ(stats.sessions_opened, 2u);
    plane.flush_now();
    durable_digest = plane.state_digest();
    // Freeze the artifacts at the flush point: a SIGKILL here would leave
    // exactly these bytes.  (Letting the gateway destruct first would be a
    // clean shutdown — it persists session closes, which is not a crash.)
    fs::copy(dir.path, crash.path,
           fs::copy_options::overwrite_existing | fs::copy_options::recursive);
    // The live gateway + plane now shut down cleanly; the copy is the
    // crash image the restarted gateway recovers from.
  }

  auto reopened = persist::StatePlane::open(plane_config(crash.path));
  ASSERT_TRUE(reopened.ok());
  persist::StatePlane& plane = *reopened.value();
  ASSERT_EQ(plane.recovery().outcome, RecoveryOutcome::kRestored);
  EXPECT_EQ(plane.recovery().digest, durable_digest);

  svc::LoopbackTransport transport;
  svc::TeleopGateway gateway(gw_config(&plane), transport);
  EXPECT_EQ(gateway.stats().sessions_restored, 2u);
  EXPECT_EQ(gateway.stats().sessions_opened, 0u);

  // Replaying the entire pre-crash stream yields zero accepts.
  for (std::uint32_t seq = 1; seq <= 20; ++seq) gw_inject(transport, gw_ep(20000), seq);
  gw_pump_all(gateway, transport, 2);
  svc::GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected_stale + stats.rejected_replayed + stats.rejected_duplicate, 20u);

  // Traffic past the rejoin guard (newest 20 + guard 256) flows again,
  // on the SAME restored session.
  gw_inject(transport, gw_ep(20000), 20 + 256 + 1);
  gw_pump_all(gateway, transport, 3);
  stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.sessions_opened, 0u);

  // A brand-new endpoint continues the persisted id sequence.
  gw_inject(transport, gw_ep(20007), 1);
  gw_pump_all(gateway, transport, 4);
  const std::vector<svc::SessionStats> sessions = gateway.sessions();
  std::uint32_t max_id = 0;
  for (const svc::SessionStats& s : sessions) max_id = std::max(max_id, s.id);
  EXPECT_EQ(sessions.size(), 3u);
  EXPECT_EQ(max_id, 3u);
  plane.stop();
}

TEST(GatewayPersist, RestoredEstopLatchStillRejects) {
  ScratchDir dir("gw_estop");
  {
    StateStore store(dir.path);
    ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
    ASSERT_TRUE(store.note_open(1, 0x0a000001u, 20000).ok());
    ASSERT_TRUE(store.note_window(1, 9, 0x1ffull, true).ok());
    ASSERT_TRUE(store.note_estop(1, true).ok());
    ASSERT_TRUE(store.sync().ok());
  }
  auto opened = persist::StatePlane::open(plane_config(dir.path));
  ASSERT_TRUE(opened.ok());
  persist::StatePlane& plane = *opened.value();
  ASSERT_EQ(plane.recovery().outcome, RecoveryOutcome::kRestored);

  svc::LoopbackTransport transport;
  svc::TeleopGateway gateway(gw_config(&plane), transport);
  EXPECT_EQ(gateway.stats().sessions_restored, 1u);

  // Even far past the rejoin guard, a latched session accepts nothing.
  gw_inject(transport, gw_ep(20000), 5000);
  gw_pump_all(gateway, transport, 1);
  const svc::GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.rejected_estop, 1u);
  plane.stop();
}

TEST(GatewayPersist, FailSafePlaneLatchesWholeGateway) {
  ScratchDir dir("gw_failsafe");
  {
    StateStore store(dir.path);
    ASSERT_TRUE(store.open_writer(PersistentState{}, 1, 0).ok());
    ASSERT_TRUE(store.note_open(1, 0x0a000001u, 20000).ok());
    ASSERT_TRUE(store.note_window(1, 9, 0x1ffull, true).ok());
    ASSERT_TRUE(store.sync().ok());
  }
  const std::string wal = StateStore::wal_path(dir.path);
  auto bytes = read_bytes(wal);
  bytes[5] ^= 0x20;  // first record header: interior damage
  write_bytes(wal, bytes);

  auto opened = persist::StatePlane::open(plane_config(dir.path));
  ASSERT_TRUE(opened.ok());
  persist::StatePlane& plane = *opened.value();
  ASSERT_TRUE(plane.fail_safe());

  svc::LoopbackTransport transport;
  svc::TeleopGateway gateway(gw_config(&plane), transport);
  for (std::uint32_t seq = 1; seq <= 5; ++seq) {
    gw_inject(transport, gw_ep(20000), seq);
    gw_inject(transport, gw_ep(20001), seq);
  }
  gw_pump_all(gateway, transport, 1);
  const svc::GatewayStats stats = gateway.stats();
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.sessions_opened, 0u);
  EXPECT_EQ(stats.rejected_estop, 10u);
  plane.stop();
}

}  // namespace
}  // namespace rg
