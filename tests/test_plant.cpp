// Unit tests for the ground-truth plant: brakes, damage model, noise
// determinism, basic servo physics.
#include <gtest/gtest.h>

#include "plant/physical_robot.hpp"

namespace rg {
namespace {

PlantConfig quiet_config() {
  PlantConfig cfg;
  cfg.current_noise_stddev = 0.0;
  cfg.seed = 3;
  return cfg;
}

TEST(Plant, RestStaysPutUnderBrakes) {
  PhysicalRobot robot(quiet_config());
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  const JointVector q0 = robot.joint_positions();
  for (int i = 0; i < 200; ++i) robot.step_control_period(Vec3::zero(), true);
  const JointVector q1 = robot.joint_positions();
  EXPECT_NEAR(q1[0], q0[0], 1e-3);
  EXPECT_NEAR(q1[1], q0[1], 1e-3);
  EXPECT_NEAR(q1[2], q0[2], 1e-3);
  EXPECT_NEAR(robot.motor_velocities().norm(), 0.0, 1e-9);
}

TEST(Plant, DriveCurrentMovesArmWhenUnbraked) {
  PhysicalRobot robot(quiet_config());
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  const MotorVector m0 = robot.motor_positions();
  for (int i = 0; i < 50; ++i) robot.step_control_period(Vec3{1.0, 0.0, 0.0}, false);
  EXPECT_GT(robot.motor_positions()[0] - m0[0], 0.01);
}

TEST(Plant, BrakeEngagementDelayAllowsCoast) {
  PlantConfig cfg = quiet_config();
  cfg.brake_engage_delay = 0.05;
  PhysicalRobot robot(cfg);
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  // Spin the shoulder motor up, then request brakes.
  for (int i = 0; i < 100; ++i) robot.step_control_period(Vec3{2.0, 0.0, 0.0}, false);
  const double v_before = robot.motor_velocities()[0];
  ASSERT_GT(v_before, 1.0);
  robot.step_control_period(Vec3::zero(), true);  // 1 ms after request: still coasting
  EXPECT_GT(robot.motor_velocities()[0], 0.0);
  for (int i = 0; i < 60; ++i) robot.step_control_period(Vec3::zero(), true);
  EXPECT_DOUBLE_EQ(robot.motor_velocities()[0], 0.0);  // locked after the delay
}

TEST(Plant, CableSnapsUnderOverload) {
  PlantConfig cfg = quiet_config();
  cfg.cable_snap_threshold = {0.5, 0.5, 5.0};  // fragile test cables
  PhysicalRobot robot(cfg);
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  for (int i = 0; i < 300 && !robot.cable_snapped(); ++i) {
    robot.step_control_period(Vec3{10.0, 0.0, 0.0}, false);
  }
  EXPECT_TRUE(robot.cable_snapped());
  EXPECT_TRUE(robot.snapped_axes()[0]);
}

TEST(Plant, SnappedCableStopsTransmission) {
  PlantConfig cfg = quiet_config();
  cfg.cable_snap_threshold = {0.5, 0.5, 5.0};
  PhysicalRobot robot(cfg);
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  for (int i = 0; i < 300 && !robot.cable_snapped(); ++i) {
    robot.step_control_period(Vec3{10.0, 0.0, 0.0}, false);
  }
  ASSERT_TRUE(robot.snapped_axes()[0]);
  // Further drive spins the motor but the joint only sees gravity/friction.
  const double q0 = robot.joint_positions()[0];
  const double m0 = robot.motor_positions()[0];
  for (int i = 0; i < 100; ++i) robot.step_control_period(Vec3{5.0, 0.0, 0.0}, false);
  EXPECT_GT(robot.motor_positions()[0] - m0, 1.0);     // motor races
  EXPECT_LT(std::abs(robot.joint_positions()[0] - q0), 0.05);  // joint drifts only
}

TEST(Plant, SetJointConfigResetsDamage) {
  PlantConfig cfg = quiet_config();
  cfg.cable_snap_threshold = {0.5, 0.5, 5.0};
  PhysicalRobot robot(cfg);
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  for (int i = 0; i < 300 && !robot.cable_snapped(); ++i) {
    robot.step_control_period(Vec3{10.0, 0.0, 0.0}, false);
  }
  ASSERT_TRUE(robot.cable_snapped());
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  EXPECT_FALSE(robot.cable_snapped());
}

TEST(Plant, NoiseIsDeterministicPerSeed) {
  PlantConfig cfg;
  cfg.current_noise_stddev = 0.05;
  cfg.seed = 9;
  PhysicalRobot a(cfg), b(cfg);
  a.set_joint_config(JointVector{0.0, 1.5, 0.15});
  b.set_joint_config(JointVector{0.0, 1.5, 0.15});
  for (int i = 0; i < 100; ++i) {
    a.step_control_period(Vec3{0.2, 0.1, 0.0}, false);
    b.step_control_period(Vec3{0.2, 0.1, 0.0}, false);
  }
  EXPECT_EQ(a.motor_positions(), b.motor_positions());

  PlantConfig other = cfg;
  other.seed = 10;
  PhysicalRobot c(other);
  c.set_joint_config(JointVector{0.0, 1.5, 0.15});
  for (int i = 0; i < 100; ++i) c.step_control_period(Vec3{0.2, 0.1, 0.0}, false);
  EXPECT_NE(a.motor_positions(), c.motor_positions());
}

TEST(Plant, EndEffectorMatchesKinematics) {
  PhysicalRobot robot(quiet_config());
  const JointVector q{0.2, 1.3, 0.18};
  robot.set_joint_config(q);
  EXPECT_NEAR(distance(robot.end_effector(), robot.kinematics().forward(q)), 0.0, 1e-12);
}

TEST(Plant, ValidatesSubstep) {
  PlantConfig cfg;
  cfg.substep = 0.0;
  EXPECT_THROW(PhysicalRobot{cfg}, std::invalid_argument);
  cfg.substep = 0.01;  // > control period
  EXPECT_THROW(PhysicalRobot{cfg}, std::invalid_argument);
}

TEST(Plant, PowerOffUnbrakedArmBackdrivesSlowly) {
  // Power off, brakes off: nothing holds the motor, so gravity back-drives
  // the elbow through the cable — the arm sags, but friction keeps it
  // slow (this is exactly why the fail-safe brakes are spring-applied).
  PhysicalRobot robot(quiet_config());
  robot.set_joint_config(JointVector{0.0, 1.2, 0.2});
  for (int i = 0; i < 500; ++i) robot.step_control_period(Vec3::zero(), false);
  EXPECT_LT(robot.joint_positions()[1], 1.2);   // it fell...
  EXPECT_GT(robot.joint_positions()[1], 0.5);   // ...but did not crash down
  EXPECT_LT(std::abs(robot.joint_velocities()[1]), 2.0);
}

}  // namespace
}  // namespace rg
