// Property-based sweeps over the physics and detection invariants that
// the paper's framework silently relies on.  Each TEST_P instance runs a
// randomized batch under one seed, so failures reproduce exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/estimator.hpp"
#include "dynamics/raven_model.hpp"
#include "hw/usb_packet.hpp"
#include "kinematics/raven_kinematics.hpp"

namespace rg {
namespace {

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  Pcg32 rng_{GetParam()};

  JointVector random_interior_config(const JointLimits& limits, double margin = 0.1) {
    JointVector q;
    for (std::size_t i = 0; i < 3; ++i) {
      const JointLimit& lim = limits.joint(i);
      q[i] = rng_.uniform(lim.min + margin * lim.span(), lim.max - margin * lim.span());
    }
    return q;
  }
};

// --- Dynamics invariants --------------------------------------------------------

TEST_P(PropertySweep, ZeroInputDynamicsDissipateEnergy) {
  // With no drive current, friction must never create energy: kinetic +
  // potential + cable strain energy is non-increasing.
  const RavenDynamicsModel model;
  const auto& p = model.params();
  for (int trial = 0; trial < 10; ++trial) {
    auto x = model.make_rest_state(random_interior_config(p.hard_stop_limits));
    // Random initial rates (bounded to keep integration in its regime).
    for (std::size_t i = 3; i < 6; ++i) x[i] = rng_.uniform(-20.0, 20.0);
    for (std::size_t i = 9; i < 11; ++i) x[i] = rng_.uniform(-0.5, 0.5);
    x[11] = rng_.uniform(-0.05, 0.05);

    const auto total_energy = [&](const RavenDynamicsModel::State& s) {
      const double mech = model.link().mechanical_energy(RavenDynamicsModel::joint_pos(s),
                                                         RavenDynamicsModel::joint_vel(s));
      double rotor = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        rotor += 0.5 * p.motors[i].rotor_inertia * s[3 + i] * s[3 + i];
      }
      // Cable strain energy: 1/2 k (C theta - q)^2 per axis.
      const JointVector qm =
          model.coupling().motor_to_joint(RavenDynamicsModel::motor_pos(s));
      const JointVector q = RavenDynamicsModel::joint_pos(s);
      double strain = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        strain += 0.5 * p.cable_stiffness[i] * (qm[i] - q[i]) * (qm[i] - q[i]);
      }
      return mech + rotor + strain;
    };

    double prev = total_energy(x);
    for (int step = 0; step < 50; ++step) {
      for (int sub = 0; sub < 20; ++sub) {
        x = model.step(x, Vec3::zero(), 5e-5, SolverKind::kRk4);
      }
      const double now = total_energy(x);
      EXPECT_LE(now, prev + 1e-6) << "energy grew at step " << step;
      prev = now;
    }
  }
}

TEST_P(PropertySweep, InverseDynamicsIsExactInverse) {
  const LinkDynamics link;
  const JointLimits limits = JointLimits::raven_defaults();
  for (int trial = 0; trial < 50; ++trial) {
    const JointVector q = random_interior_config(limits);
    JointVector qd;
    Vec3 qdd;
    for (std::size_t i = 0; i < 3; ++i) {
      qd[i] = rng_.uniform(-1.0, 1.0);
      qdd[i] = rng_.uniform(-10.0, 10.0);
    }
    const Vec3 tau = link.inverse_dynamics(q, qd, qdd);
    const Vec3 back = link.acceleration(q, qd, tau);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(back[i], qdd[i], 1e-8);
  }
}

TEST_P(PropertySweep, CouplingRoundTripAndPowerBalance) {
  const CableCoupling coupling;
  for (int trial = 0; trial < 100; ++trial) {
    MotorVector m;
    Vec3 tau_j;
    for (std::size_t i = 0; i < 3; ++i) {
      m[i] = rng_.uniform(-300.0, 300.0);
      tau_j[i] = rng_.uniform(-20.0, 20.0);
    }
    const JointVector q = coupling.motor_to_joint(m);
    const MotorVector back = coupling.joint_to_motor(q);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(back[i], m[i], 1e-8 * (1.0 + std::abs(m[i])));
    }
    const MotorVector omega{rng_.uniform(-50.0, 50.0), rng_.uniform(-50.0, 50.0),
                            rng_.uniform(-50.0, 50.0)};
    const MotorVector tau_m = coupling.joint_torque_to_motor(tau_j);
    EXPECT_NEAR(tau_m.dot(omega), tau_j.dot(coupling.motor_to_joint_velocity(omega)), 1e-8);
  }
}

// --- Kinematics invariants -------------------------------------------------------

TEST_P(PropertySweep, TipSpeedIsPositivelyHomogeneous) {
  // ||J q'|| scales linearly with the rate vector.
  const RavenKinematics kin;
  for (int trial = 0; trial < 50; ++trial) {
    const JointVector q = random_interior_config(kin.limits());
    JointVector qd;
    for (std::size_t i = 0; i < 3; ++i) qd[i] = rng_.uniform(-1.0, 1.0);
    const double s = rng_.uniform(0.1, 5.0);
    EXPECT_NEAR(kin.tip_speed(q, s * qd), s * kin.tip_speed(q, qd), 1e-9);
  }
}

TEST_P(PropertySweep, ForwardMapIsIsometricInInsertion) {
  // Moving only the insertion joint moves the tip exactly that distance.
  const RavenKinematics kin;
  for (int trial = 0; trial < 50; ++trial) {
    JointVector q = random_interior_config(kin.limits());
    JointVector q2 = q;
    const double delta = rng_.uniform(-0.02, 0.02);
    q2[2] += delta;
    EXPECT_NEAR(distance(kin.forward(q), kin.forward(q2)), std::abs(delta), 1e-9);
  }
}

// --- Detection-stack invariants ----------------------------------------------------

TEST_P(PropertySweep, PredictionDeltasMatchDefinition) {
  // instant velocity == |mpos_next - mpos_now| / dt, etc., for random
  // model states and commands.
  DynamicModelEstimator est;
  const RavenDynamicsModel model;
  est.observe_feedback(model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15}));
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::int16_t, 3> dac{};
    for (auto& d : dac) d = static_cast<std::int16_t>(rng_.uniform_int(0, 65535) - 32768);
    const Prediction pred = est.predict(dac);
    ASSERT_TRUE(pred.valid);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(pred.motor_instant_vel[i],
                  std::abs(pred.mpos_next[i] - pred.mpos_now[i]) * 1000.0, 1e-6);
      EXPECT_NEAR(pred.motor_instant_acc[i],
                  std::abs(pred.mvel_next[i] - pred.mvel_now[i]) * 1000.0, 1e-6);
    }
    EXPECT_GE(pred.ee_displacement, 0.0);
    est.commit({0, 0, 0});
    est.observe_feedback(model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15}));
  }
}

TEST_P(PropertySweep, BiggerInjectionNeverPredictsSmallerAcceleration) {
  // Monotonicity from rest: scaling the DAC command up scales the
  // predicted first-step acceleration up (until the current limit).
  const RavenDynamicsModel model;
  for (int trial = 0; trial < 20; ++trial) {
    DynamicModelEstimator est;
    est.observe_feedback(
        model.coupling().joint_to_motor(random_interior_config(JointLimits::raven_defaults())));
    const auto small_dac = static_cast<std::int16_t>(rng_.uniform_int(500, 8000));
    const auto large_dac = static_cast<std::int16_t>(
        rng_.uniform_int(static_cast<std::uint32_t>(small_dac) + 4000, 30000));
    const Prediction small = est.predict({0, small_dac, 0});
    const Prediction large = est.predict({0, large_dac, 0});
    EXPECT_GE(large.motor_instant_acc[1] + 1e-9, small.motor_instant_acc[1]);
  }
}

// --- Wire-format invariants ---------------------------------------------------------

TEST_P(PropertySweep, ChecksumCatchesEverySingleBitFlip) {
  // The XOR checksum detects any single-bit corruption (the reason the
  // *unverified* board is the vulnerability, not the checksum itself).
  for (int trial = 0; trial < 20; ++trial) {
    CommandPacket pkt;
    pkt.state = RobotState::kPedalDown;
    pkt.watchdog_bit = rng_.uniform() < 0.5;
    for (auto& d : pkt.dac) d = static_cast<std::int16_t>(rng_.uniform_int(0, 65535) - 32768);
    const CommandBytes clean = encode_command(pkt);
    const std::size_t byte_idx = rng_.uniform_int(0, kCommandPacketSize - 1);
    const std::size_t bit_idx = rng_.uniform_int(0, 7);
    CommandBytes corrupt = clean;
    corrupt[byte_idx] = static_cast<std::uint8_t>(corrupt[byte_idx] ^ (1U << bit_idx));
    EXPECT_FALSE(decode_command(corrupt, /*verify_checksum=*/true).ok())
        << "flip at byte " << byte_idx << " bit " << bit_idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace rg
