// Unit tests for recorded-trajectory playback (CSV round trip).
#include <gtest/gtest.h>

#include <sstream>

#include "trajectory/recorded.hpp"

namespace rg {
namespace {

TEST(RecordedTrajectory, InterpolatesLinearly) {
  RecordedTrajectory traj({{0.0, Position{0.0, 0.0, 0.0}}, {2.0, Position{2.0, 4.0, -2.0}}});
  EXPECT_EQ(traj.position(1.0), (Position{1.0, 2.0, -1.0}));
  EXPECT_EQ(traj.position(0.5), (Position{0.5, 1.0, -0.5}));
}

TEST(RecordedTrajectory, ClampsOutsideRange) {
  RecordedTrajectory traj({{1.0, Position{1.0, 0.0, 0.0}}, {2.0, Position{2.0, 0.0, 0.0}}});
  EXPECT_EQ(traj.position(0.0), (Position{1.0, 0.0, 0.0}));
  EXPECT_EQ(traj.position(99.0), (Position{2.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(traj.duration(), 2.0);
}

TEST(RecordedTrajectory, ValidatesMonotonicity) {
  EXPECT_THROW(RecordedTrajectory({{1.0, Position{}}, {1.0, Position{}}}),
               std::invalid_argument);
  EXPECT_THROW(RecordedTrajectory({}), std::invalid_argument);
}

TEST(RecordedTrajectory, CsvRoundTrip) {
  // Record a circle, load it back, compare sampled positions.
  const CircleTrajectory circle(Position{0.09, 0.0, -0.11}, 0.01, 2.0, 1.0);
  std::stringstream csv;
  record_trajectory_csv(circle, 0.01, csv);

  const auto loaded = RecordedTrajectory::from_csv(csv);
  ASSERT_TRUE(loaded.ok());
  const RecordedTrajectory& traj = loaded.value();
  EXPECT_NEAR(traj.duration(), circle.duration(), 0.011);
  for (double t = 0.0; t < circle.duration(); t += 0.137) {
    EXPECT_NEAR(distance(traj.position(t), circle.position(t)), 0.0, 1e-5) << "t=" << t;
  }
}

TEST(RecordedTrajectory, CsvErrors) {
  std::stringstream empty;
  EXPECT_FALSE(RecordedTrajectory::from_csv(empty).ok());

  std::stringstream no_header("1,2,3,4\n");
  EXPECT_FALSE(RecordedTrajectory::from_csv(no_header).ok());

  std::stringstream bad_row("t,x,y,z\n0.0,1.0,2.0\n");
  EXPECT_FALSE(RecordedTrajectory::from_csv(bad_row).ok());

  std::stringstream non_monotonic("t,x,y,z\n0.0,0,0,0\n0.0,1,1,1\n");
  EXPECT_FALSE(RecordedTrajectory::from_csv(non_monotonic).ok());

  std::stringstream header_only("t,x,y,z\n");
  EXPECT_FALSE(RecordedTrajectory::from_csv(header_only).ok());
}

TEST(RecordedTrajectory, RecordValidatesDt) {
  const CircleTrajectory circle(Position{0.09, 0.0, -0.11}, 0.01, 2.0, 1.0);
  std::stringstream os;
  EXPECT_THROW(record_trajectory_csv(circle, 0.0, os), std::invalid_argument);
}

TEST(RecordedTrajectory, SingleSampleIsConstant) {
  RecordedTrajectory traj({{0.5, Position{1.0, 2.0, 3.0}}});
  EXPECT_EQ(traj.position(0.0), (Position{1.0, 2.0, 3.0}));
  EXPECT_EQ(traj.position(9.0), (Position{1.0, 2.0, 3.0}));
  EXPECT_EQ(traj.sample_count(), 1u);
}

}  // namespace
}  // namespace rg
