// Tests for the co-simulation harness itself: the adverse-impact oracle,
// attack installation, start-delay semantics, experiment helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/threshold_store.hpp"

namespace rg {
namespace {

TEST(SimHarness, StartDelayKeepsRobotInEstop) {
  SimConfig cfg = make_session(SessionParams{.seed = 50}, std::nullopt, MitigationMode::kObserveOnly);
  cfg.start_delay_ticks = 300;
  SurgicalSim sim(std::move(cfg));
  sim.run(0.25);
  EXPECT_EQ(sim.control().state(), RobotState::kEStop);
  sim.run(0.2);
  EXPECT_EQ(sim.control().state(), RobotState::kInit);
}

TEST(SimHarness, OracleIgnoresCommandedMotion) {
  // A fast-but-commanded trajectory must not be labelled an abrupt jump.
  SessionParams p;
  p.seed = 51;
  p.trajectory_speed = 0.05;  // aggressive surgical speed
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.run(5.0);
  EXPECT_FALSE(sim.outcome().adverse_impact());
  EXPECT_LT(sim.outcome().max_ee_jump_window, 1.0e-3);
}

TEST(SimHarness, InstallPlacesArtifactsOnTheRightHops) {
  SimConfig cfg = make_session(SessionParams{.seed = 52}, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 1000;
  const AttackArtifacts art = build_attack(spec);
  sim.install(art);
  EXPECT_EQ(sim.write_chain().size(), 1u);
  EXPECT_TRUE(sim.itp_chain().empty());
  EXPECT_TRUE(sim.read_chain().empty());

  AttackSpec spec_a;
  spec_a.variant = AttackVariant::kUserInputInjection;
  spec_a.magnitude = 1e-4;
  sim.install(build_attack(spec_a));
  EXPECT_EQ(sim.itp_chain().size(), 1u);
}

TEST(SimHarness, MissingTrajectoryRejected) {
  SimConfig cfg;
  EXPECT_THROW(SurgicalSim{std::move(cfg)}, std::invalid_argument);
}

TEST(SimHarness, RunOutcomeAccessors) {
  RunOutcome out;
  EXPECT_FALSE(out.adverse_impact());
  EXPECT_FALSE(out.detected_preemptively());
  out.detector_alarm_tick = 10;
  EXPECT_TRUE(out.detected_preemptively());  // alarm, no impact at all
  out.adverse_impact_tick = 5;
  EXPECT_FALSE(out.detected_preemptively());  // alarm after the impact
  out.adverse_impact_tick = 15;
  EXPECT_TRUE(out.detected_preemptively());
  out.cable_snapped = true;
  EXPECT_TRUE(out.adverse_impact());
}

DetectionThresholds sample_thresholds(double scale = 1.0) {
  DetectionThresholds th;
  th.motor_vel = Vec3{1.5 * scale, 2.5 * scale, 3.5 * scale};
  th.motor_acc = Vec3{100.0 * scale, 200.0 * scale, 300.0 * scale};
  th.joint_vel = Vec3{0.1 * scale, 0.2 * scale, 0.3 * scale};
  return th;
}

TEST(ThresholdStore, CommitActiveRoundTrip) {
  const std::string path = "/tmp/rg_test_thresholds.txt";
  std::filesystem::remove(path);
  const DetectionThresholds th = sample_thresholds();
  ThresholdStore store(path);
  ThresholdProvenance prov;
  prov.source = "unit test";
  prov.runs = 7;
  const auto id = store.commit(th, prov);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store.present());
  const auto active = store.active();
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active.value().id, id.value());
  EXPECT_EQ(active.value().parent, ThresholdEpoch::kNoParent);
  EXPECT_EQ(active.value().provenance.runs, 7u);
  EXPECT_EQ(active.value().provenance.source, "unit-test");  // whitespace sanitized
  EXPECT_EQ(active.value().thresholds.motor_vel, th.motor_vel);
  EXPECT_EQ(active.value().thresholds.motor_acc, th.motor_acc);
  EXPECT_EQ(active.value().thresholds.joint_vel, th.joint_vel);
  std::filesystem::remove(path);
}

TEST(ThresholdStore, MissingFileReportsNotReady) {
  ThresholdStore store("/tmp/definitely_not_here_12345.txt");
  EXPECT_FALSE(store.present());
  const auto active = store.active();
  ASSERT_FALSE(active.ok());
  EXPECT_EQ(active.error().code(), ErrorCode::kNotReady);
}

TEST(ThresholdStore, CorruptFileReportsMalformed) {
  const std::string path = "/tmp/rg_test_thresholds_corrupt.txt";
  {
    std::ofstream os(path);
    os << "raven-guard-thresholds 2\n1.0 2.0 3.0\n";  // truncated: 3 of 9 values
  }
  ThresholdStore store(path);
  const auto truncated = store.active();
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code(), ErrorCode::kMalformedPacket);

  {
    std::ofstream os(path);
    os << "1 2 3 4 5 6 7 8 9\n";  // legacy headerless format
  }
  const auto headerless = store.active();
  ASSERT_FALSE(headerless.ok());
  EXPECT_EQ(headerless.error().code(), ErrorCode::kMalformedPacket);

  // A corrupt store must refuse commits rather than clobber history.
  EXPECT_FALSE(store.commit(sample_thresholds(), {}).ok());
  {
    std::ifstream is(path);
    std::string first;
    std::getline(is, first);
    EXPECT_EQ(first, "1 2 3 4 5 6 7 8 9");  // untouched
  }
  std::filesystem::remove(path);
}

TEST(ThresholdStore, EpochHistoryAndRollback) {
  const std::string path = "/tmp/rg_test_threshold_epochs.txt";
  std::filesystem::remove(path);
  ThresholdStore store(path);
  const auto e0 = store.commit(sample_thresholds(1.0), {});
  const auto e1 = store.commit(sample_thresholds(2.0), {});
  ASSERT_TRUE(e0.ok());
  ASSERT_TRUE(e1.ok());
  EXPECT_NE(e0.value(), e1.value());

  const auto active = store.active();
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active.value().id, e1.value());
  EXPECT_EQ(active.value().parent, static_cast<std::int64_t>(e0.value()));

  const auto history = store.history();
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().size(), 2u);
  EXPECT_EQ(history.value()[0].id, e0.value());
  EXPECT_EQ(history.value()[1].id, e1.value());

  // Roll back to the first epoch; the history keeps both.
  ASSERT_TRUE(store.rollback(e0.value()).ok());
  const auto after = store.active();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().id, e0.value());
  EXPECT_EQ(after.value().thresholds.motor_vel, sample_thresholds(1.0).motor_vel);
  EXPECT_EQ(store.history().value().size(), 2u);

  // Rolling back to an unknown epoch is an explicit error.
  EXPECT_EQ(store.rollback(999).error().code(), ErrorCode::kInvalidArgument);
  std::filesystem::remove(path);
}

TEST(ThresholdStore, LegacyV2LoadsAsEpochZero) {
  const std::string path = "/tmp/rg_test_threshold_v2.txt";
  {
    std::ofstream os(path);
    os << "raven-guard-thresholds 2\n1.5 2.5 3.5 100 200 300 0.1 0.2 0.3\n";
  }
  ThresholdStore store(path);
  const auto active = store.active();
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active.value().id, 0u);
  EXPECT_EQ(active.value().provenance.source, "v2-migration");
  EXPECT_EQ(active.value().thresholds.motor_vel, (Vec3{1.5, 2.5, 3.5}));

  // Committing on top upgrades the file to v3 and keeps epoch 0.
  const auto e1 = store.commit(sample_thresholds(3.0), {});
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1.value(), 1u);
  const auto history = store.history();
  ASSERT_TRUE(history.ok());
  ASSERT_EQ(history.value().size(), 2u);
  EXPECT_EQ(history.value()[0].thresholds.motor_vel, (Vec3{1.5, 2.5, 3.5}));
  EXPECT_EQ(store.active().value().id, 1u);
  std::filesystem::remove(path);
}

TEST(Experiment, MakeSessionWiresDetection) {
  DetectionThresholds th;
  th.motor_vel = th.motor_acc = th.joint_vel = Vec3::filled(1.0);
  SessionParams p;
  p.seed = 61;
  p.fusion = FusionPolicy::kTwoOfThree;
  p.detector_solver = SolverKind::kRk4;
  const SimConfig with = make_session(p, th, MitigationMode::kArmed);
  ASSERT_TRUE(with.detection.has_value());
  EXPECT_TRUE(with.detection->mitigation_enabled);
  EXPECT_EQ(with.detection->detector.fusion, FusionPolicy::kTwoOfThree);
  EXPECT_EQ(with.detection->estimator.solver, SolverKind::kRk4);

  const SimConfig without = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_FALSE(without.detection.has_value());
}

TEST(Experiment, SessionsAreSeedDeterministic) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 20000;
  spec.duration_packets = 32;
  spec.delay_packets = 400;
  spec.seed = 5;
  SessionParams p;
  p.seed = 62;
  p.duration_sec = 3.0;
  const AttackRunResult a = run_attack_session(p, spec, std::nullopt, MitigationMode::kObserveOnly);
  const AttackRunResult b = run_attack_session(p, spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_EQ(a.outcome.max_ee_jump_window, b.outcome.max_ee_jump_window);
  EXPECT_EQ(a.injections, b.injections);
}

TEST(Experiment, LearnThresholdsValidates) {
  SessionParams p;
  const auto learned = learn_thresholds(p, 0);
  ASSERT_FALSE(learned.ok());
  EXPECT_EQ(learned.error().code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace rg
