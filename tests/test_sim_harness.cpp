// Tests for the co-simulation harness itself: the adverse-impact oracle,
// attack installation, start-delay semantics, experiment helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/threshold_store.hpp"

namespace rg {
namespace {

TEST(SimHarness, StartDelayKeepsRobotInEstop) {
  SimConfig cfg = make_session(SessionParams{.seed = 50}, std::nullopt, MitigationMode::kObserveOnly);
  cfg.start_delay_ticks = 300;
  SurgicalSim sim(std::move(cfg));
  sim.run(0.25);
  EXPECT_EQ(sim.control().state(), RobotState::kEStop);
  sim.run(0.2);
  EXPECT_EQ(sim.control().state(), RobotState::kInit);
}

TEST(SimHarness, OracleIgnoresCommandedMotion) {
  // A fast-but-commanded trajectory must not be labelled an abrupt jump.
  SessionParams p;
  p.seed = 51;
  p.trajectory_speed = 0.05;  // aggressive surgical speed
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.run(5.0);
  EXPECT_FALSE(sim.outcome().adverse_impact());
  EXPECT_LT(sim.outcome().max_ee_jump_window, 1.0e-3);
}

TEST(SimHarness, InstallPlacesArtifactsOnTheRightHops) {
  SimConfig cfg = make_session(SessionParams{.seed = 52}, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 1000;
  const AttackArtifacts art = build_attack(spec);
  sim.install(art);
  EXPECT_EQ(sim.write_chain().size(), 1u);
  EXPECT_TRUE(sim.itp_chain().empty());
  EXPECT_TRUE(sim.read_chain().empty());

  AttackSpec spec_a;
  spec_a.variant = AttackVariant::kUserInputInjection;
  spec_a.magnitude = 1e-4;
  sim.install(build_attack(spec_a));
  EXPECT_EQ(sim.itp_chain().size(), 1u);
}

TEST(SimHarness, MissingTrajectoryRejected) {
  SimConfig cfg;
  EXPECT_THROW(SurgicalSim{std::move(cfg)}, std::invalid_argument);
}

TEST(SimHarness, RunOutcomeAccessors) {
  RunOutcome out;
  EXPECT_FALSE(out.adverse_impact());
  EXPECT_FALSE(out.detected_preemptively());
  out.detector_alarm_tick = 10;
  EXPECT_TRUE(out.detected_preemptively());  // alarm, no impact at all
  out.adverse_impact_tick = 5;
  EXPECT_FALSE(out.detected_preemptively());  // alarm after the impact
  out.adverse_impact_tick = 15;
  EXPECT_TRUE(out.detected_preemptively());
  out.cable_snapped = true;
  EXPECT_TRUE(out.adverse_impact());
}

TEST(ThresholdStore, SaveLoadRoundTrip) {
  DetectionThresholds th;
  th.motor_vel = Vec3{1.5, 2.5, 3.5};
  th.motor_acc = Vec3{100.0, 200.0, 300.0};
  th.joint_vel = Vec3{0.1, 0.2, 0.3};
  ThresholdStore store("/tmp/rg_test_thresholds.txt");
  ASSERT_TRUE(store.save(th).ok());
  EXPECT_TRUE(store.present());
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().motor_vel, th.motor_vel);
  EXPECT_EQ(loaded.value().motor_acc, th.motor_acc);
  EXPECT_EQ(loaded.value().joint_vel, th.joint_vel);
  std::filesystem::remove(store.path());
}

TEST(ThresholdStore, MissingFileReportsNotReady) {
  ThresholdStore store("/tmp/definitely_not_here_12345.txt");
  EXPECT_FALSE(store.present());
  const auto loaded = store.load();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error().code(), ErrorCode::kNotReady);
}

TEST(ThresholdStore, CorruptFileReportsMalformed) {
  const std::string path = "/tmp/rg_test_thresholds_corrupt.txt";
  {
    std::ofstream os(path);
    os << "raven-guard-thresholds 2\n1.0 2.0 3.0\n";  // truncated: 3 of 9 values
  }
  ThresholdStore store(path);
  const auto truncated = store.load();
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.error().code(), ErrorCode::kMalformedPacket);

  {
    std::ofstream os(path);
    os << "1 2 3 4 5 6 7 8 9\n";  // legacy headerless format
  }
  const auto headerless = store.load();
  ASSERT_FALSE(headerless.ok());
  EXPECT_EQ(headerless.error().code(), ErrorCode::kMalformedPacket);
  std::filesystem::remove(path);
}

TEST(ThresholdStore, LoadOrLearnWritesCache) {
  const std::string path = "/tmp/rg_test_threshold_cache.txt";
  std::filesystem::remove(path);
  SessionParams p;
  p.seed = 60;
  p.duration_sec = 3.0;
  ThresholdStore store(path);
  int learns = 0;
  const auto learner = [&]() {
    ++learns;
    return learn_thresholds(p, 2);
  };
  const DetectionThresholds th = store.load_or_learn(learner);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(learns, 1);
  // Second call loads the cache and must agree exactly.
  const DetectionThresholds th2 = store.load_or_learn(learner);
  EXPECT_EQ(learns, 1);
  EXPECT_EQ(th.motor_vel, th2.motor_vel);
  EXPECT_EQ(th.motor_acc, th2.motor_acc);
  EXPECT_EQ(th.joint_vel, th2.joint_vel);
  std::filesystem::remove(path);
}

TEST(Experiment, MakeSessionWiresDetection) {
  DetectionThresholds th;
  th.motor_vel = th.motor_acc = th.joint_vel = Vec3::filled(1.0);
  SessionParams p;
  p.seed = 61;
  p.fusion = FusionPolicy::kTwoOfThree;
  p.detector_solver = SolverKind::kRk4;
  const SimConfig with = make_session(p, th, MitigationMode::kArmed);
  ASSERT_TRUE(with.detection.has_value());
  EXPECT_TRUE(with.detection->mitigation_enabled);
  EXPECT_EQ(with.detection->detector.fusion, FusionPolicy::kTwoOfThree);
  EXPECT_EQ(with.detection->estimator.solver, SolverKind::kRk4);

  const SimConfig without = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_FALSE(without.detection.has_value());
}

TEST(Experiment, SessionsAreSeedDeterministic) {
  AttackSpec spec;
  spec.variant = AttackVariant::kTorqueInjection;
  spec.magnitude = 20000;
  spec.duration_packets = 32;
  spec.delay_packets = 400;
  spec.seed = 5;
  SessionParams p;
  p.seed = 62;
  p.duration_sec = 3.0;
  const AttackRunResult a = run_attack_session(p, spec, std::nullopt, MitigationMode::kObserveOnly);
  const AttackRunResult b = run_attack_session(p, spec, std::nullopt, MitigationMode::kObserveOnly);
  EXPECT_EQ(a.outcome.max_ee_jump_window, b.outcome.max_ee_jump_window);
  EXPECT_EQ(a.injections, b.injections);
}

TEST(Experiment, LearnThresholdsValidates) {
  SessionParams p;
  EXPECT_THROW((void)learn_thresholds(p, 0), std::invalid_argument);
}

}  // namespace
}  // namespace rg
