// SpscRing: wraparound, full/empty boundaries, batch pops, and a
// two-thread hammer (run under TSan by scripts/tier1.sh — the suite
// name is in the tier-1 TSan regex precisely so the lock-free ordering
// is machine-checked, not argued about in comments).
#include "common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace rg {
namespace {

TEST(SpscRing, StartsEmpty) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size_approx(), 0u);
  EXPECT_EQ(ring.capacity(), 8u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ZeroCapacityThrows) { EXPECT_THROW(SpscRing<int>(0), std::invalid_argument); }

TEST(SpscRing, FillsToCapacityThenRefuses) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_FALSE(ring.try_push(99));  // full: refused, not overwritten
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);  // FIFO, and the refused push left no trace
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(99));
}

TEST(SpscRing, FifoAcrossWraparound) {
  SpscRing<int> ring(3);
  int next_in = 0;
  int next_out = 0;
  // Push/pop enough to lap the (capacity+1)-slot storage many times.
  for (int round = 0; round < 50; ++round) {
    while (ring.try_push(next_in)) ++next_in;
    int out = -1;
    while (ring.try_pop(out)) {
      EXPECT_EQ(out, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GT(next_out, 100);
}

TEST(SpscRing, CapacityOne) {
  SpscRing<int> ring(1);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.try_push(8));  // one slot, already taken
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(9));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 9);
}

TEST(SpscRing, PopBatchDrainsInOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.try_push(i));
  std::vector<int> out(16, -1);
  EXPECT_EQ(ring.pop_batch(out.data(), 4), 4u);  // bounded by max
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(ring.pop_batch(out.data(), 16), 6u);  // bounded by contents
  for (int i = 0; i < 6; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i + 4);
  EXPECT_EQ(ring.pop_batch(out.data(), 16), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// Two-thread hammer: a producer streams a known sequence through a
// deliberately tiny ring while the consumer checks order and integrity.
// TSan validates the acquire/release pairing; the checksum validates
// that no element is lost, duplicated, or torn.  Spin loops yield so the
// test makes progress on single-core hosts (and under TSan's scheduler).
TEST(SpscRing, TwoThreadHammerPreservesSequence) {
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring(8);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t sum = 0;
  std::uint64_t batch[16];
  while (expected < kCount) {
    const std::size_t n = ring.pop_batch(batch, 16);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch[i], expected);
      sum += batch[i];
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// Same hammer through the single-pop path.
TEST(SpscRing, TwoThreadHammerSinglePops) {
  constexpr std::uint64_t kCount = 30'000;
  SpscRing<std::uint64_t> ring(4);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  while (expected < kCount) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace rg
