// Unit + integration tests for the tissue interaction model (the harm
// metric behind the paper's injury narrative).
#include <gtest/gtest.h>

#include "plant/physical_robot.hpp"
#include "plant/tissue.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {
namespace {

TissueParams test_tissue() {
  TissueParams p;
  p.surface_point = Position{0.0, 0.0, 0.0};
  p.normal = Vec3{0.0, 0.0, 1.0};
  return p;
}

// --- TissueModel unit behaviour ----------------------------------------------------

TEST(Tissue, NoContactAboveSurface) {
  TissueModel tissue(test_tissue());
  const TissueContact c = tissue.update(Position{0.0, 0.0, 0.01}, Vec3::zero());
  EXPECT_DOUBLE_EQ(c.depth, 0.0);
  EXPECT_DOUBLE_EQ(c.force.norm(), 0.0);
  EXPECT_FALSE(tissue.damaged());
}

TEST(Tissue, ElasticIndentationPushesBack) {
  TissueModel tissue(test_tissue());
  const TissueContact c = tissue.update(Position{0.0, 0.0, -2e-3}, Vec3::zero());
  EXPECT_NEAR(c.depth, 2e-3, 1e-12);
  EXPECT_NEAR(c.force[2], 400.0 * 2e-3, 1e-9);  // along +normal
  EXPECT_FALSE(c.perforated);
}

TEST(Tissue, DampingAddsOnApproachOnly) {
  TissueModel tissue(test_tissue());
  const TissueContact approaching =
      tissue.update(Position{0.0, 0.0, -2e-3}, Vec3{0.0, 0.0, -0.1});
  EXPECT_NEAR(approaching.force[2], 400.0 * 2e-3 + 4.0 * 0.1, 1e-9);
  TissueModel tissue2(test_tissue());
  const TissueContact retreating =
      tissue2.update(Position{0.0, 0.0, -2e-3}, Vec3{0.0, 0.0, 10.0});
  EXPECT_DOUBLE_EQ(retreating.force.norm(), 0.0);  // never sucks the tool in
}

TEST(Tissue, DeepIndentationPerforates) {
  TissueModel tissue(test_tissue());
  const TissueContact c = tissue.update(Position{0.0, 0.0, -7e-3}, Vec3::zero());
  EXPECT_TRUE(c.perforated);
  EXPECT_TRUE(tissue.perforated());
  // A ruptured surface no longer resists.
  EXPECT_DOUBLE_EQ(c.force.norm(), 0.0);
}

TEST(Tissue, FastLateralDragShears) {
  TissueModel tissue(test_tissue());
  const TissueContact c =
      tissue.update(Position{0.0, 0.0, -2e-3}, Vec3{0.3, 0.0, 0.0});
  EXPECT_TRUE(c.sheared);
  EXPECT_TRUE(tissue.damaged());
}

TEST(Tissue, GentleLateralMotionIsSafe) {
  TissueModel tissue(test_tissue());
  (void)tissue.update(Position{0.0, 0.0, -2e-3}, Vec3{0.05, 0.0, 0.0});
  EXPECT_FALSE(tissue.damaged());
}

TEST(Tissue, ShearRequiresEngagement) {
  TissueModel tissue(test_tissue());
  // Barely touching: fast lateral motion is skimming, not tearing.
  (void)tissue.update(Position{0.0, 0.0, -0.5e-3}, Vec3{0.5, 0.0, 0.0});
  EXPECT_FALSE(tissue.sheared());
}

TEST(Tissue, DamageLatchesAndResets) {
  TissueModel tissue(test_tissue());
  (void)tissue.update(Position{0.0, 0.0, -7e-3}, Vec3::zero());
  (void)tissue.update(Position{0.0, 0.0, 0.1}, Vec3::zero());  // tool withdrawn
  EXPECT_TRUE(tissue.perforated());
  EXPECT_NEAR(tissue.max_depth(), 7e-3, 1e-12);
  tissue.reset();
  EXPECT_FALSE(tissue.damaged());
}

TEST(Tissue, ValidatesParams) {
  TissueParams p = test_tissue();
  p.normal = Vec3{0.0, 0.0, 2.0};
  EXPECT_THROW(TissueModel{p}, std::invalid_argument);
  p = test_tissue();
  p.stiffness = 0.0;
  EXPECT_THROW(TissueModel{p}, std::invalid_argument);
  p = test_tissue();
  p.rupture_depth = 0.0;
  EXPECT_THROW(TissueModel{p}, std::invalid_argument);
}

// --- Integrated with the plant / full sim ------------------------------------------

TissueParams workspace_tissue() {
  // A surface just below the standard workspace box (tool hovers ~mm
  // above it at the bottom of its motions).
  TissueParams p;
  p.surface_point = Position{0.09, 0.0, -0.156};
  p.normal = Vec3{0.0, 0.0, 1.0};
  return p;
}

TEST(TissueIntegration, CleanSurgeryDoesNotDamageTissue) {
  SimConfig cfg = make_session(SessionParams{.duration_sec = 4.0, .seed = 71},
                               std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.plant().add_tissue(workspace_tissue());
  sim.run(4.0);
  ASSERT_NE(sim.plant().tissue(), nullptr);
  EXPECT_FALSE(sim.plant().tissue()->damaged());
}

TEST(TissueIntegration, InjectedTorqueShearsEmbeddedTissue) {
  // Deterministic version of the paper's clinical endpoint at plant
  // level: the tool is working 2 mm inside compliant tissue when a
  // malicious elbow current arrives — the resulting lateral sweep exceeds
  // the shear limit and tears it.
  PlantConfig plant;
  plant.current_noise_stddev = 0.0;
  PhysicalRobot robot(plant);
  robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
  const Position tip = robot.end_effector();
  TissueParams p;
  p.surface_point = tip + Vec3{0.0, 0.0, 2e-3};  // tool embedded 2 mm
  p.normal = Vec3{0.0, 0.0, 1.0};
  robot.add_tissue(p);

  // 30 ms of quiet contact first: no damage.
  for (int i = 0; i < 30; ++i) robot.step_control_period(Vec3::zero(), false);
  EXPECT_FALSE(robot.tissue()->damaged());

  // The injected torque: 6 A on the *shoulder* (azimuth) sweeps the tool
  // laterally while it stays embedded (~ scenario B at 20000 counts).
  for (int i = 0; i < 60; ++i) robot.step_control_period(Vec3{6.0, 0.0, 0.0}, false);
  EXPECT_TRUE(robot.tissue()->sheared());
}

TEST(TissueIntegration, ContactForceDeflectsTheArm) {
  // Physics sanity: the reaction force really acts on the joints — with
  // the shafts locked by the brakes, an arm settling on its cables ends
  // measurably higher when pressing on tissue than in free space.
  const auto settle = [](bool with_tissue) {
    PlantConfig plant;
    plant.current_noise_stddev = 0.0;
    PhysicalRobot robot(plant);
    robot.set_joint_config(JointVector{0.0, 1.5, 0.15});
    if (with_tissue) {
      TissueParams p;
      p.surface_point = robot.end_effector() + Vec3{0.0, 0.0, 1e-3};  // 1 mm embedded
      p.normal = Vec3{0.0, 0.0, 1.0};
      p.stiffness = 2000.0;  // firmer structure for a visible deflection
      robot.add_tissue(p);
    }
    for (int i = 0; i < 300; ++i) robot.step_control_period(Vec3::zero(), true);
    return robot.end_effector()[2];
  };
  EXPECT_GT(settle(true), settle(false) + 1e-6);
}

}  // namespace
}  // namespace rg
