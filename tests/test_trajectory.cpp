// Unit + property tests for the trajectory module.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "kinematics/raven_kinematics.hpp"
#include "trajectory/min_jerk.hpp"
#include "trajectory/trajectory.hpp"

namespace rg {
namespace {

// --- MinJerkSegment --------------------------------------------------------------

TEST(MinJerk, BoundaryConditions) {
  const MinJerkSegment seg(Position{0.0, 0.0, 0.0}, Position{1.0, 2.0, 3.0}, 2.0);
  EXPECT_EQ(seg.position(0.0), seg.start());
  EXPECT_EQ(seg.position(2.0), seg.end());
  EXPECT_DOUBLE_EQ(seg.velocity(0.0).norm(), 0.0);
  EXPECT_DOUBLE_EQ(seg.velocity(2.0).norm(), 0.0);
}

TEST(MinJerk, MidpointAtHalfTime) {
  const MinJerkSegment seg(Position{0.0, 0.0, 0.0}, Position{1.0, 0.0, 0.0}, 1.0);
  EXPECT_NEAR(seg.position(0.5)[0], 0.5, 1e-12);  // s(0.5) = 0.5 by symmetry
}

TEST(MinJerk, PeakVelocityAtMidpoint) {
  const MinJerkSegment seg(Position{0.0, 0.0, 0.0}, Position{1.0, 0.0, 0.0}, 1.0);
  // Peak of the min-jerk profile is 15/8 of the average speed.
  EXPECT_NEAR(seg.velocity(0.5)[0], 1.875, 1e-9);
  EXPECT_GT(seg.velocity(0.5)[0], seg.velocity(0.25)[0]);
}

TEST(MinJerk, ClampsOutsideDuration) {
  const MinJerkSegment seg(Position{0.0, 0.0, 0.0}, Position{1.0, 0.0, 0.0}, 1.0);
  EXPECT_EQ(seg.position(-5.0), seg.start());
  EXPECT_EQ(seg.position(99.0), seg.end());
  EXPECT_DOUBLE_EQ(seg.velocity(-1.0).norm(), 0.0);
}

TEST(MinJerk, VelocityMatchesFiniteDifference) {
  const MinJerkSegment seg(Position{0.0, 0.0, 0.0}, Position{0.5, -0.2, 0.1}, 1.7);
  const double t = 0.6;
  const double eps = 1e-7;
  const Vec3 fd = (seg.position(t + eps) - seg.position(t - eps)) / (2.0 * eps);
  EXPECT_NEAR(distance(fd, seg.velocity(t)), 0.0, 1e-5);
}

TEST(MinJerk, ValidatesDuration) {
  EXPECT_THROW(MinJerkSegment(Position{}, Position{}, 0.0), std::invalid_argument);
}

// --- WaypointTrajectory ------------------------------------------------------------

TEST(WaypointTrajectory, PassesThroughWaypoints) {
  const std::vector<Position> wps{Position{0.0, 0.0, 0.0}, Position{0.01, 0.0, 0.0},
                                  Position{0.01, 0.01, 0.0}};
  const WaypointTrajectory traj(wps, 0.01, 0.1);
  EXPECT_EQ(traj.position(0.0), wps[0]);
  EXPECT_EQ(traj.position(traj.duration()), wps[2]);
  // Each leg is 0.01 m at 0.01 m/s = 1 s.
  EXPECT_NEAR(traj.duration(), 2.0, 1e-9);
  EXPECT_NEAR(distance(traj.position(1.0), wps[1]), 0.0, 1e-9);
}

TEST(WaypointTrajectory, MinLegTimeFloorsShortHops) {
  const std::vector<Position> wps{Position{0.0, 0.0, 0.0}, Position{1e-6, 0.0, 0.0}};
  const WaypointTrajectory traj(wps, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(traj.duration(), 0.5);
}

TEST(WaypointTrajectory, Validation) {
  EXPECT_THROW(WaypointTrajectory({Position{}}, 0.01), std::invalid_argument);
  EXPECT_THROW(WaypointTrajectory({Position{}, Position{}}, 0.0), std::invalid_argument);
}

TEST(WaypointTrajectory, ContinuousAcrossSegmentBoundaries) {
  Pcg32 rng(3);
  const WaypointTrajectory traj = make_random_trajectory(rng, WorkspaceBox{}, 5);
  double prev_norm = 0.0;
  Position prev = traj.position(0.0);
  for (double t = 0.001; t < traj.duration(); t += 0.001) {
    const Position p = traj.position(t);
    const double step_len = distance(p, prev);
    EXPECT_LT(step_len, 5e-4) << "discontinuity at t=" << t;  // < 0.5 mm per ms
    prev = p;
    prev_norm = step_len;
  }
  (void)prev_norm;
}

// --- CircleTrajectory ----------------------------------------------------------------

TEST(CircleTrajectory, StartsAndEndsAtCenterishRadius) {
  const Position c{0.09, 0.0, -0.11};
  const CircleTrajectory traj(c, 0.01, 2.0, 3.0);
  // Ramp-up means t=0 is at the center.
  EXPECT_NEAR(distance(traj.position(0.0), c), 0.0, 1e-9);
  // Mid-run: on the circle.
  EXPECT_NEAR(distance(traj.position(3.0), c), 0.01, 1e-9);
  EXPECT_DOUBLE_EQ(traj.duration(), 6.0);
}

TEST(CircleTrajectory, Validation) {
  const Position c{};
  EXPECT_THROW(CircleTrajectory(c, 0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CircleTrajectory(c, 0.01, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(CircleTrajectory(c, 0.01, 1.0, 0.0), std::invalid_argument);
}

// --- SutureTrajectory ---------------------------------------------------------------

TEST(SutureTrajectory, AdvancesAlongDirection) {
  const Position start{0.08, -0.02, -0.10};
  const SutureTrajectory traj(start, Vec3{0.0, 1.0, 0.0}, 3, 0.008);
  const Position end = traj.position(traj.duration());
  EXPECT_NEAR(end[1] - start[1], 3 * 0.008, 1e-9);
  EXPECT_NEAR(end[0], start[0], 1e-9);
}

TEST(SutureTrajectory, DipsBelowStart) {
  const Position start{0.08, -0.02, -0.10};
  const SutureTrajectory traj(start, Vec3{0.0, 1.0, 0.0}, 1, 0.008, 0.006);
  double min_z = start[2];
  for (double t = 0.0; t < traj.duration(); t += 0.01) {
    min_z = std::min(min_z, traj.position(t)[2]);
  }
  EXPECT_NEAR(min_z, start[2] - 0.006, 1e-4);
}

TEST(SutureTrajectory, Validation) {
  EXPECT_THROW(SutureTrajectory(Position{}, Vec3{0.0, 0.0, 0.0}, 1), std::invalid_argument);
  EXPECT_THROW(SutureTrajectory(Position{}, Vec3{1.0, 0.0, 0.0}, 0), std::invalid_argument);
}

// --- WorkspaceBox & random trajectories ------------------------------------------------

TEST(WorkspaceBox, ContainsItsSamples) {
  const WorkspaceBox box;
  Pcg32 rng(9);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(box.contains(box.sample(rng)));
  EXPECT_TRUE(box.contains(box.center()));
}

TEST(WorkspaceBox, RejectsOutside) {
  const WorkspaceBox box;
  Position p = box.center();
  p[2] = 1.0;
  EXPECT_FALSE(box.contains(p));
}

// Property: random trajectories inside the default workspace box are
// fully reachable by the arm's IK — this is what makes the console
// emulator's synthetic sessions valid.
class RandomTrajectoryReachable : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTrajectoryReachable, EveryPointHasIkSolution) {
  Pcg32 rng(GetParam());
  const WaypointTrajectory traj = make_random_trajectory(rng, WorkspaceBox{}, 8);
  const RavenKinematics kin;
  EXPECT_TRUE(trajectory_reachable(traj, kin, 0.02));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrajectoryReachable,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(RandomTrajectory, Validation) {
  Pcg32 rng(1);
  EXPECT_THROW((void)make_random_trajectory(rng, WorkspaceBox{}, 1), std::invalid_argument);
}

// --- TremorDecorator ---------------------------------------------------------------

TEST(Tremor, BoundedPerturbation) {
  auto base = std::make_shared<WaypointTrajectory>(
      std::vector<Position>{Position{0.1, 0.0, -0.1}, Position{0.11, 0.0, -0.1}}, 0.02);
  const TremorDecorator shaky(base, 5, 3.0e-5);
  for (double t = 0.0; t < shaky.duration(); t += 0.01) {
    const double dev = distance(shaky.position(t), base->position(t));
    EXPECT_LE(dev, 3.0 * 1.5 * 3.0e-5);  // two sinusoids, three axes
  }
}

TEST(Tremor, PreservesDuration) {
  auto base = std::make_shared<CircleTrajectory>(Position{0.09, 0.0, -0.11}, 0.01, 2.0, 1.0);
  const TremorDecorator shaky(base, 5);
  EXPECT_DOUBLE_EQ(shaky.duration(), base->duration());
}

TEST(Tremor, NullBaseThrows) {
  EXPECT_THROW(TremorDecorator(nullptr, 1), std::invalid_argument);
}

TEST(Tremor, DeterministicPerSeed) {
  auto base = std::make_shared<CircleTrajectory>(Position{0.09, 0.0, -0.11}, 0.01, 2.0, 1.0);
  const TremorDecorator a(base, 77), b(base, 77), c(base, 78);
  EXPECT_EQ(a.position(0.5), b.position(0.5));
  EXPECT_NE(a.position(0.5), c.position(0.5));
}

}  // namespace
}  // namespace rg
