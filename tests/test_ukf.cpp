// Unit tests for the MatN/Cholesky substrate and the UKF estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/ukf_estimator.hpp"
#include "math/matn.hpp"

namespace rg {
namespace {

// --- MatN / Cholesky ----------------------------------------------------------------

TEST(MatN, IdentityAndDiagonal) {
  const auto id = MatN<3>::identity();
  const Vec<3> x{1.0, 2.0, 3.0};
  EXPECT_EQ(id * x, x);
  const auto d = MatN<3>::diagonal(Vec<3>{2.0, 3.0, 4.0});
  EXPECT_EQ(d * x, (Vec<3>{2.0, 6.0, 12.0}));
}

TEST(MatN, AddAndScale) {
  auto a = MatN<2>::identity();
  auto b = MatN<2>::identity();
  const auto c = a + (2.0 * b);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(MatN, OuterProductUpdate) {
  MatN<2> m{};
  m.add_outer(2.0, Vec<2>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 18.0);
}

TEST(MatN, SymmetrizeAverages) {
  MatN<2> m{};
  m(0, 1) = 2.0;
  m(1, 0) = 4.0;
  m.symmetrize();
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Cholesky, FactorsSpdMatrix) {
  MatN<3> a{};
  a(0, 0) = 4.0; a(0, 1) = 2.0; a(0, 2) = 0.0;
  a(1, 0) = 2.0; a(1, 1) = 5.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 3.0;
  const auto l = cholesky_lower(a);
  ASSERT_TRUE(l.has_value());
  // Check L L^T == A.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += l->m[i][k] * l->m[j][k];
      EXPECT_NEAR(s, a(i, j), 1e-12);
    }
  }
  // Upper triangle of L is zero.
  EXPECT_DOUBLE_EQ(l->m[0][1], 0.0);
  EXPECT_DOUBLE_EQ(l->m[0][2], 0.0);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  MatN<2> a{};
  a(0, 0) = 1.0;
  a(1, 1) = -1.0;
  EXPECT_FALSE(cholesky_lower(a).has_value());
  MatN<2> zero{};
  EXPECT_FALSE(cholesky_lower(zero).has_value());
}

// --- UKF estimator -------------------------------------------------------------------

MotorVector rest_angles() {
  const RavenDynamicsModel model;
  return model.coupling().joint_to_motor(JointVector{0.0, 1.5, 0.15});
}

TEST(Ukf, InvalidUntilFeedback) {
  UkfEstimator ukf;
  EXPECT_FALSE(ukf.predict({0, 0, 0}).valid);
}

TEST(Ukf, HardSyncOnFirstObservation) {
  UkfEstimator ukf;
  const MotorVector m = rest_angles();
  ukf.observe_feedback(m);
  const Prediction pred = ukf.predict({0, 0, 0});
  ASSERT_TRUE(pred.valid);
  EXPECT_NEAR(pred.mpos_now[0], m[0], 1e-9);
}

TEST(Ukf, CovarianceStaysBoundedOnQuietData) {
  UkfEstimator ukf;
  const MotorVector m = rest_angles();
  ukf.observe_feedback(m);
  for (int i = 0; i < 200; ++i) {
    ukf.observe_feedback(m);
    ukf.commit({0, 0, 0});
  }
  // Measured states stay near the single-reading variance; every
  // diagonal entry stays positive and bounded (no blow-up).
  EXPECT_LT(ukf.covariance()(0, 0), 2.0 * 1.6e-3 * 1.6e-3);
  for (std::size_t i = 0; i < UkfEstimator::kN; ++i) {
    EXPECT_GT(ukf.covariance()(i, i), 0.0) << "state " << i;
    EXPECT_LT(ukf.covariance()(i, i), 10.0) << "state " << i;
  }
}

TEST(Ukf, TracksMovingEncoderPositions) {
  // Encoders sweep at constant velocity: position must follow closely.
  UkfEstimator ukf;
  const MotorVector m0 = rest_angles();
  ukf.observe_feedback(m0);
  const double rate = 4.0;  // rad/s on the shoulder motor
  MotorVector m = m0;
  for (int i = 1; i <= 400; ++i) {
    m[0] = m0[0] + rate * 1e-3 * i;
    ukf.observe_feedback(m);
    ukf.commit({0, 0, 0});
  }
  EXPECT_NEAR(ukf.predict({0, 0, 0}).mpos_now[0], m[0], 0.05);
}

TEST(Ukf, StiffCableLimitsVelocityObservability) {
  // A documented finding of this observer study: through a stiff, heavily
  // damped cable transmission, motor-velocity deviations decay within a
  // couple of control periods, so position innovations carry almost no
  // persistent velocity information — the sigma-point filter cannot
  // reconstruct a steady 4 rad/s sweep from encoder positions alone.
  // The deployed detector therefore injects velocity directly via the
  // Luenberger correction (estimator.hpp) instead of inferring it.
  UkfEstimator ukf;
  DynamicModelEstimator luenberger;
  const MotorVector m0 = rest_angles();
  ukf.observe_feedback(m0);
  luenberger.observe_feedback(m0);
  const double rate = 4.0;
  MotorVector m = m0;
  for (int i = 1; i <= 400; ++i) {
    m[0] = m0[0] + rate * 1e-3 * i;
    ukf.observe_feedback(m);
    ukf.commit({0, 0, 0});
    luenberger.observe_feedback(m);
    luenberger.commit({0, 0, 0});
  }
  const double ukf_vel = ukf.predict({0, 0, 0}).mvel_now[0];
  const double luen_vel = luenberger.predict({0, 0, 0}).mvel_now[0];
  EXPECT_NEAR(luen_vel, rate, 1.0);            // the deployed observer tracks
  EXPECT_LT(std::abs(ukf_vel), 0.5 * rate);    // the UKF materially underestimates
}

TEST(Ukf, LargeDacPredictsLargeAcceleration) {
  UkfEstimator ukf;
  ukf.observe_feedback(rest_angles());
  const Prediction quiet = ukf.predict({0, 0, 0});
  const Prediction violent = ukf.predict({0, 25000, 0});
  EXPECT_GT(violent.motor_instant_acc[1], 50.0 * (quiet.motor_instant_acc[1] + 1.0));
}

TEST(Ukf, DisengageForcesResync) {
  UkfEstimator ukf;
  ukf.observe_feedback(rest_angles());
  ukf.commit({25000, 0, 0});
  ukf.mark_disengaged();
  ukf.observe_feedback(rest_angles());
  EXPECT_NEAR(ukf.predict({0, 0, 0}).mvel_now.norm(), 0.0, 1e-9);
}

TEST(Ukf, ValidatesConfig) {
  UkfConfig cfg;
  cfg.step = 0.0;
  EXPECT_THROW(UkfEstimator{cfg}, std::invalid_argument);
  cfg = UkfConfig{};
  cfg.measurement_std = 0.0;
  EXPECT_THROW(UkfEstimator{cfg}, std::invalid_argument);
  cfg = UkfConfig{};
  cfg.process_vel_std = -1.0;
  EXPECT_THROW(UkfEstimator{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rg
