// Unit tests for the SVG visualization module.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "viz/svg.hpp"
#include "viz/trace_plots.hpp"

namespace rg {
namespace {

Series simple_series(const std::string& label) {
  Series s;
  s.label = label;
  s.x = {0.0, 1.0, 2.0, 3.0};
  s.y = {0.0, 1.0, 0.5, 2.0};
  return s;
}

TEST(SvgChart, RendersWellFormedDocument) {
  SvgChart chart("Test chart", "time", "value");
  chart.add_series(simple_series("a"));
  std::ostringstream os;
  chart.render(os);
  const std::string svg = os.str();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("Test chart"), std::string::npos);
}

TEST(SvgChart, EscapesXmlInLabels) {
  SvgChart chart("a < b & c", "x", "y");
  chart.add_series(simple_series("s"));
  std::ostringstream os;
  chart.render(os);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b & c"), std::string::npos);
}

TEST(SvgChart, MultipleSeriesAndMarkers) {
  SvgChart chart("multi", "x", "y");
  chart.add_series(simple_series("one"));
  chart.add_series(simple_series("two"));
  chart.add_marker(Marker{"event", "#d62728", 1.5});
  EXPECT_EQ(chart.series_count(), 2u);
  std::ostringstream os;
  chart.render(os);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("one"), std::string::npos);
  EXPECT_NE(svg.find("two"), std::string::npos);
  EXPECT_NE(svg.find("event"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);
}

TEST(SvgChart, ValidatesInput) {
  SvgChart chart("t", "x", "y");
  Series bad;
  bad.x = {1.0};
  bad.y = {1.0, 2.0};
  EXPECT_THROW(chart.add_series(bad), std::invalid_argument);
  Series empty;
  EXPECT_THROW(chart.add_series(empty), std::invalid_argument);
  std::ostringstream os;
  EXPECT_THROW(chart.render(os), std::invalid_argument);  // no series
  EXPECT_THROW(SvgChart("t", "x", "y", 10, 10), std::invalid_argument);
}

TEST(SvgChart, ConstantSeriesDoesNotDivideByZero) {
  SvgChart chart("flat", "x", "y");
  Series s;
  s.label = "flat";
  s.x = {0.0, 1.0};
  s.y = {5.0, 5.0};
  chart.add_series(std::move(s));
  std::ostringstream os;
  EXPECT_NO_THROW(chart.render(os));
}

TEST(SvgChart, FixedYRangeHonoured) {
  SvgChart chart("ranged", "x", "y");
  chart.set_y_range(-10.0, 10.0);
  chart.add_series(simple_series("s"));
  std::ostringstream os;
  EXPECT_NO_THROW(chart.render(os));
  EXPECT_NE(os.str().find("-10"), std::string::npos);
}

TEST(SeriesColor, CyclesDeterministically) {
  EXPECT_STREQ(series_color(0), series_color(8));
  EXPECT_STRNE(series_color(0), series_color(1));
}

TEST(TracePlots, ChartsFromRealRun) {
  SessionParams p;
  p.seed = 6;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  sim.set_trace(&trace);
  sim.run(2.0);

  std::ostringstream js, es;
  joint_position_chart(trace).render(js);
  end_effector_chart(trace).render(es);
  EXPECT_NE(js.str().find("insertion (m)"), std::string::npos);
  EXPECT_NE(es.str().find("polyline"), std::string::npos);
}

TEST(TracePlots, StateByteChartFromCapture) {
  std::vector<CapturedPacket> capture;
  for (int i = 0; i < 100; ++i) {
    CommandPacket pkt;
    pkt.state = i < 50 ? RobotState::kPedalUp : RobotState::kPedalDown;
    pkt.watchdog_bit = (i % 2) == 0;
    const CommandBytes bytes = encode_command(pkt);
    capture.push_back(CapturedPacket{static_cast<std::uint64_t>(i), {bytes.begin(), bytes.end()}});
  }
  std::ostringstream os;
  state_byte_chart(capture, 0, 0x10).render(os);
  EXPECT_NE(os.str().find("state byte"), std::string::npos);
}

TEST(TracePlots, ModelVsPlantOverlay) {
  const std::vector<double> t{0.0, 0.001, 0.002};
  const std::vector<double> model{1.0, 1.1, 1.2};
  const std::vector<double> plant{1.0, 1.05, 1.15};
  std::ostringstream os;
  model_vs_plant_chart(t, model, plant, "overlay", "rad").render(os);
  EXPECT_NE(os.str().find("dynamic model"), std::string::npos);
  EXPECT_NE(os.str().find("robot (plant)"), std::string::npos);
  EXPECT_THROW((void)model_vs_plant_chart(t, model, std::vector<double>{1.0}, "t", "y"),
               std::invalid_argument);
}

TEST(TracePlots, EmptyTraceRejected) {
  TraceRecorder empty;
  EXPECT_THROW((void)joint_position_chart(empty), std::invalid_argument);
  EXPECT_THROW((void)end_effector_chart(empty), std::invalid_argument);
  EXPECT_THROW((void)state_byte_chart({}, 0, 0x10), std::invalid_argument);
}

}  // namespace
}  // namespace rg
