// Tests for the wrist/instrument axes (channels 3-5): orientation
// pass-through servo, wire liveness, and the detector's documented
// 3-DOF blind spot.
#include <gtest/gtest.h>

#include <memory>

#include "attack/logging_wrapper.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"

namespace rg {
namespace {

SessionParams quick(std::uint64_t seed) {
  SessionParams p;
  p.seed = seed;
  p.duration_sec = 4.0;
  return p;
}

TEST(Wrist, ServoTracksCommandedOrientation) {
  SimConfig cfg = make_session(quick(30), std::nullopt, MitigationMode::kObserveOnly);
  cfg.orientation.amplitude = Vec3{0.2, 0.0, 0.0};
  cfg.orientation.frequency_hz = 0.4;
  SurgicalSim sim(std::move(cfg));
  sim.run(4.0);
  EXPECT_FALSE(sim.control().safety_fault_latched());
  // The wrist moved: channel-3 axis swept a visible angle.
  EXPECT_GT(std::abs(sim.plant().wrist_positions()[0]), 0.02);
}

TEST(Wrist, StationaryWithoutOrientationCommands) {
  SimConfig cfg = make_session(quick(31), std::nullopt, MitigationMode::kObserveOnly);
  cfg.orientation.amplitude = Vec3::zero();
  SurgicalSim sim(std::move(cfg));
  sim.run(4.0);
  EXPECT_LT(std::abs(sim.plant().wrist_positions()[0]), 5e-3);
  EXPECT_LT(std::abs(sim.plant().wrist_positions()[1]), 5e-3);
}

TEST(Wrist, ChannelsLiveOnTheWire) {
  // With wrist motion, the DAC bytes for channels 3-5 vary — the packet
  // surface the paper's Fig. 5 shows as many-valued data bytes.
  auto logger = std::make_shared<LoggingWrapper>("r", 0, "r", 0);
  SimConfig cfg = make_session(quick(32), std::nullopt, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(logger);
  sim.run(4.0);

  std::set<std::uint8_t> byte7_values;
  for (const CapturedPacket& pkt : logger->capture()) byte7_values.insert(pkt.bytes[7]);
  EXPECT_GT(byte7_values.size(), 10u);  // channel-3 DAC low byte is live
}

TEST(Wrist, BrakesHoldWristAxes) {
  SimConfig cfg = make_session(quick(33), std::nullopt, MitigationMode::kObserveOnly);
  cfg.pedal = PedalSchedule{{{1.2, 2.0}}};  // pedal lifts at 2 s
  SurgicalSim sim(std::move(cfg));
  sim.run(2.3);  // brakes engaged + locked by now
  const Vec3 held = sim.plant().wrist_positions();
  sim.run(1.0);
  EXPECT_NEAR(distance(sim.plant().wrist_positions(), held), 0.0, 1e-6);
}

TEST(Wrist, InjectionOnWristChannelIsTheDetectorsBlindSpot) {
  // The paper's reduced model covers the three positioning joints only:
  // "the other four degrees of freedom are instrument joints, mainly
  // affecting the orientation of the end-effectors."  An injection on a
  // wrist channel therefore spins the instrument without moving the tool
  // tip: no positional impact, no dynamic-model alarm — a documented
  // scope limit, not a bug.
  const DetectionThresholds th = learn_thresholds(quick(34), 5).value();

  InjectionConfig inj;
  inj.mode = InjectionConfig::Mode::kSetChannel;
  inj.target_channel = 4;  // a wrist axis
  inj.value = 20000;
  inj.delay_packets = 300;
  inj.duration_packets = 128;

  SimConfig cfg = make_session(quick(34), th, MitigationMode::kObserveOnly);
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(std::make_shared<InjectionWrapper>(inj));

  // Pedal down at 1.2 s; injection starts 300 engaged packets later
  // (t = 1.5 s).  Sample the wrist mid-injection, then finish the run.
  sim.run(1.52);
  const double mid_injection_speed = std::abs(sim.plant().wrist_velocities()[1]);
  sim.run(2.48);

  EXPECT_FALSE(sim.outcome().adverse_impact());    // tip did not jump
  EXPECT_FALSE(sim.outcome().detector_alarmed());  // model is blind here
  // But the instrument was violently spun — the physical evidence exists
  // (20000 DAC counts ~ 6 A through the wrist motor)...
  EXPECT_GT(mid_injection_speed, 10.0);
  // ...and it is RAVEN's all-channel DAC check that eventually reacts
  // (the wrist servo's counter-torque saturates past the threshold).
  EXPECT_TRUE(sim.outcome().raven_detected());
}

TEST(Wrist, RavenDacCheckCoversWristChannels) {
  // RAVEN's own threshold check runs on every DAC word, so a *software*
  // computed wrist command above the limit still faults the system.
  ControlConfig cfg;
  SafetyChecker checker(cfg.safety);
  std::array<std::int16_t, kNumBoardChannels> dac{};
  dac[4] = 30000;
  const auto violation = checker.check_dac(dac);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->channel, 4u);
}

}  // namespace
}  // namespace rg
