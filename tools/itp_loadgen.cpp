// itp_loadgen: multi-threaded ITP load generator for the teleoperation
// gateway.
//
// Opens one UDP socket per simulated console (distinct source port =>
// distinct gateway session), generates ITP packets from master-console
// trajectories at a configurable per-session rate, and can salt the
// stream with client-side loss and an attack mix (replayed datagrams,
// bit-flipped payloads, undefined flag bits) to exercise the gateway's
// ingest classification.
//
//   itp_loadgen --port 7413 --sessions 64 --rate 1000 --duration 2
//   itp_loadgen --port 7413 --sessions 8 --burst --attack-mix 0.05

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "defense/mac.hpp"
#include "net/itp_packet.hpp"
#include "net/master_console.hpp"
#include "svc/session.hpp"
#include "trajectory/trajectory.hpp"

namespace {

using namespace rg;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint32_t port = 0;
  std::uint32_t sessions = 8;
  std::uint32_t threads = 0;  // 0 = min(sessions, hardware_concurrency)
  double rate = 1000.0;
  double duration = 2.0;
  double loss = 0.0;
  double attack_mix = 0.0;
  bool burst = false;
  bool mac = false;
  std::uint64_t mac_seed = 7;
  std::uint64_t seed = 1;
};

struct Totals {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> dropped{0};   // client-side simulated loss
  std::atomic<std::uint64_t> replayed{0};
  std::atomic<std::uint64_t> flipped{0};
  std::atomic<std::uint64_t> garbled{0};
  std::atomic<std::uint64_t> send_errors{0};
};

struct ClientSession {
  int fd = -1;
  std::unique_ptr<MasterConsole> console;
  Pcg32 rng;
  std::vector<std::uint8_t> last_frame;
  std::uint32_t attack_rotor = 0;

  ClientSession() : rng(1) {}
  ~ClientSession() {
    if (fd >= 0) ::close(fd);
  }
};

std::uint8_t xor_checksum(const std::uint8_t* bytes, std::size_t n) {
  std::uint8_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c = static_cast<std::uint8_t>(c ^ bytes[i]);
  return c;
}

/// One frame for this tick: encoded ITP, attack transform, optional MAC
/// seal.  Tampering happens *after* the seal so a MAC-protected link
/// rejects it at the tag check, as a real in-network attacker would be.
std::vector<std::uint8_t> build_frame(ClientSession& cs, const LoadgenOptions& opt,
                                      const MacKey& key, Totals& totals) {
  const ItpPacket pkt = cs.console->tick();
  ItpBytes itp = encode_itp(pkt);

  std::vector<std::uint8_t> frame;
  if (opt.mac) {
    const svc::MacFrameBytes sealed = svc::seal_itp_frame(itp, key);
    frame.assign(sealed.begin(), sealed.end());
  } else {
    frame.assign(itp.begin(), itp.end());
  }

  if (opt.attack_mix > 0.0 && cs.rng.uniform() < opt.attack_mix) {
    switch (cs.attack_rotor++ % 3) {
      case 0:  // replay the previous datagram verbatim
        if (!cs.last_frame.empty()) {
          totals.replayed.fetch_add(1, std::memory_order_relaxed);
          return cs.last_frame;
        }
        break;
      case 1:  // bit-flip mid-payload (checksum/MAC should catch it)
        frame[10] = static_cast<std::uint8_t>(frame[10] ^ 0x40);
        totals.flipped.fetch_add(1, std::memory_order_relaxed);
        break;
      default:  // undefined flag bits, checksum fixed up to match
        frame[4] = static_cast<std::uint8_t>(frame[4] | 0x20);
        frame[kItpPacketSize - 1] = xor_checksum(frame.data(), kItpPacketSize - 1);
        totals.garbled.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  cs.last_frame = frame;
  return frame;
}

void run_worker(std::vector<ClientSession*> sessions, const LoadgenOptions& opt,
                const MacKey& key, std::uint64_t ticks, Totals& totals) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto period = std::chrono::nanoseconds(static_cast<std::uint64_t>(1.0e9 / opt.rate));
  for (std::uint64_t tick = 0; tick < ticks; ++tick) {
    if (!opt.burst) std::this_thread::sleep_until(t0 + period * tick);
    for (ClientSession* cs : sessions) {
      const std::vector<std::uint8_t> frame = build_frame(*cs, opt, key, totals);
      if (opt.loss > 0.0 && cs->rng.uniform() < opt.loss) {
        totals.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (::send(cs->fd, frame.data(), frame.size(), 0) < 0) {
        totals.send_errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        totals.sent.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opt;
  std::string out_json;

  FlagSet flags;
  flags.value("--host", &opt.host, "gateway host (default 127.0.0.1)");
  flags.value("--port", &opt.port, "gateway UDP port (required)");
  flags.value("--sessions", &opt.sessions, "concurrent console sessions");
  flags.value("--threads", &opt.threads, "sender threads (0 = auto)");
  flags.value("--rate", &opt.rate, "per-session packet rate, Hz (default 1000)");
  flags.value("--duration", &opt.duration, "seconds of traffic per session");
  flags.value("--loss", &opt.loss, "client-side drop probability [0,1]");
  flags.value("--attack-mix", &opt.attack_mix, "fraction of packets attacked [0,1]");
  flags.flag("--burst", &opt.burst, "no pacing: send as fast as possible");
  flags.flag("--mac", &opt.mac, "seal frames with the SipHash MAC");
  flags.value("--mac-seed", &opt.mac_seed, "MAC key seed (must match the gateway)");
  flags.value("--seed", &opt.seed, "base RNG seed");
  flags.value("--out", &out_json, "write a rg.loadgen/1 JSON summary here");
  if (const Status st = flags.parse(argc, argv, 1); !st.ok()) {
    std::fprintf(stderr, "%s\n\nusage: itp_loadgen [options]\n%s",
                 st.error().to_string().c_str(), flags.help().c_str());
    return 1;
  }
  if (opt.port == 0 || opt.port > 65535 || opt.sessions == 0 || opt.rate <= 0.0) {
    std::fprintf(stderr, "itp_loadgen: --port, --sessions and --rate must be positive\n%s",
                 flags.help().c_str());
    return 1;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "itp_loadgen: bad host %s\n", opt.host.c_str());
    return 1;
  }

  // One connected socket + console per session; distinct source ports key
  // distinct gateway sessions.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  sessions.reserve(opt.sessions);
  for (std::uint32_t i = 0; i < opt.sessions; ++i) {
    auto cs = std::make_unique<ClientSession>();
    cs->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
    if (cs->fd < 0 || ::connect(cs->fd, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr)) != 0) {
      std::perror("itp_loadgen: socket/connect");
      return 1;
    }
    auto trajectory = std::make_shared<CircleTrajectory>(
        Position{0.09, 0.0, -0.11}, 0.010 + 0.0001 * static_cast<double>(i % 16), 2.5, 1.0e9);
    cs->console = std::make_unique<MasterConsole>(std::move(trajectory),
                                                  PedalSchedule::hold_from(0.05));
    cs->rng = Pcg32(opt.seed * 0x9e3779b97f4a7c15ULL + i);
    sessions.push_back(std::move(cs));
  }

  const std::uint32_t hw = std::max(1U, std::thread::hardware_concurrency());
  const std::uint32_t threads =
      opt.threads > 0 ? opt.threads : std::min(opt.sessions, std::min(hw, 8U));
  const auto ticks = static_cast<std::uint64_t>(opt.duration * opt.rate);
  const MacKey key = MacKey::from_seed(opt.mac_seed);

  Totals totals;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::vector<ClientSession*> mine;
    for (std::uint32_t i = t; i < opt.sessions; i += threads) mine.push_back(sessions[i].get());
    pool.emplace_back(run_worker, std::move(mine), std::cref(opt), std::cref(key),
                      ticks, std::ref(totals));
  }
  for (std::thread& th : pool) th.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const std::uint64_t sent = totals.sent.load();
  std::printf(
      "itp_loadgen: %u sessions x %llu ticks in %.3f s — sent %llu, dropped %llu, "
      "replayed %llu, flipped %llu, garbled %llu, errors %llu\n",
      opt.sessions, static_cast<unsigned long long>(ticks), elapsed,
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(totals.dropped.load()),
      static_cast<unsigned long long>(totals.replayed.load()),
      static_cast<unsigned long long>(totals.flipped.load()),
      static_cast<unsigned long long>(totals.garbled.load()),
      static_cast<unsigned long long>(totals.send_errors.load()));

  if (!out_json.empty()) {
    std::ofstream os(out_json);
    os << "{\n  \"schema\": \"rg.loadgen/1\",\n"
       << "  \"sessions\": " << opt.sessions << ",\n  \"ticks\": " << ticks << ",\n"
       << "  \"elapsed_sec\": " << elapsed << ",\n  \"sent\": " << sent << ",\n"
       << "  \"dropped\": " << totals.dropped.load() << ",\n"
       << "  \"replayed\": " << totals.replayed.load() << ",\n"
       << "  \"flipped\": " << totals.flipped.load() << ",\n"
       << "  \"garbled\": " << totals.garbled.load() << ",\n"
       << "  \"send_errors\": " << totals.send_errors.load() << "\n}\n";
  }
  return 0;
}
