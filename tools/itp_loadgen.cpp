// itp_loadgen: multi-threaded ITP load generator for the teleoperation
// gateway.
//
// Opens one UDP socket per simulated console (distinct source port =>
// distinct gateway session), generates ITP packets from master-console
// trajectories at a configurable per-session rate, and can salt the
// stream with client-side loss and an attack mix (replayed datagrams,
// bit-flipped payloads, undefined flag bits) to exercise the gateway's
// ingest classification.
//
//   itp_loadgen --port 7413 --sessions 64 --rate 1000 --duration 2
//   itp_loadgen --port 7413 --sessions 8 --burst --attack-mix 0.05
//
// Rejoin mode drives the gateway-restart story (docs/persistence.md):
// at --rejoin-at the senders pause (the harness SIGKILLs and restarts
// the gateway against the same --state-dir during the gap), replay the
// last --rejoin-replay recorded datagrams per session verbatim — the
// restored anti-replay windows must reject every one — then skip the
// consoles --rejoin-skip ticks forward (a real console's sequence is
// clocked, so a pause advances it past the rejoin guard) and resume
// paced traffic into the restored sessions:
//
//   itp_loadgen --port 7413 --sessions 8 --rejoin-at 500
//     --rejoin-pause-ms 1500 --rejoin-replay 32 --rejoin-skip 512

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "defense/mac.hpp"
#include "net/itp_packet.hpp"
#include "net/master_console.hpp"
#include "svc/session.hpp"
#include "trajectory/trajectory.hpp"

namespace {

using namespace rg;

/// Upper bound on --batch: one stack-allocated mmsghdr array per flush.
constexpr std::size_t kMaxSendBatch = 64;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint32_t port = 0;
  std::uint32_t sessions = 8;
  std::uint32_t threads = 0;  // 0 = min(sessions, hardware_concurrency)
  std::uint32_t batch = 1;    // ticks coalesced into one sendmmsg per session
  double rate = 1000.0;
  double duration = 2.0;
  double loss = 0.0;
  double attack_mix = 0.0;
  bool burst = false;
  bool mac = false;
  std::uint64_t mac_seed = 7;
  std::uint64_t seed = 1;
  std::uint64_t rejoin_at = 0;       // tick index to pause at (0 = no rejoin)
  std::uint32_t rejoin_pause_ms = 1000;
  std::uint32_t rejoin_replay = 0;   // recorded frames replayed per session
  std::uint32_t rejoin_skip = 0;     // console ticks skipped across the pause
};

struct Totals {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> dropped{0};   // client-side simulated loss
  std::atomic<std::uint64_t> replayed{0};
  std::atomic<std::uint64_t> flipped{0};
  std::atomic<std::uint64_t> garbled{0};
  std::atomic<std::uint64_t> send_errors{0};
  std::atomic<std::uint64_t> late_sends{0};  // pacing points a full window behind
  std::atomic<std::uint64_t> max_late_ns{0};
  std::atomic<std::uint64_t> rejoin_replayed{0};  // pre-pause frames re-sent verbatim
};

struct PendingFrame {
  std::uint8_t bytes[64];
  std::size_t len = 0;
};

struct ClientSession {
  int fd = -1;
  std::unique_ptr<MasterConsole> console;
  Pcg32 rng;
  std::vector<std::uint8_t> last_frame;
  std::uint32_t attack_rotor = 0;
  /// Rejoin mode: ring of the last --rejoin-replay frames that hit the
  /// wire, replayed verbatim after the gateway restart.
  std::vector<PendingFrame> sent_ring;
  std::size_t sent_pos = 0;
  std::uint64_t sent_count = 0;

  ClientSession() : rng(1) {}
  ~ClientSession() {
    if (fd >= 0) ::close(fd);
  }
};

std::uint8_t xor_checksum(const std::uint8_t* bytes, std::size_t n) {
  std::uint8_t c = 0;
  for (std::size_t i = 0; i < n; ++i) c = static_cast<std::uint8_t>(c ^ bytes[i]);
  return c;
}

/// One frame for this tick: encoded ITP, attack transform, optional MAC
/// seal.  Tampering happens *after* the seal so a MAC-protected link
/// rejects it at the tag check, as a real in-network attacker would be.
std::vector<std::uint8_t> build_frame(ClientSession& cs, const LoadgenOptions& opt,
                                      const MacKey& key, Totals& totals) {
  const ItpPacket pkt = cs.console->tick();
  ItpBytes itp = encode_itp(pkt);

  std::vector<std::uint8_t> frame;
  if (opt.mac) {
    const svc::MacFrameBytes sealed = svc::seal_itp_frame(itp, key);
    frame.assign(sealed.begin(), sealed.end());
  } else {
    frame.assign(itp.begin(), itp.end());
  }

  if (opt.attack_mix > 0.0 && cs.rng.uniform() < opt.attack_mix) {
    switch (cs.attack_rotor++ % 3) {
      case 0:  // replay the previous datagram verbatim
        if (!cs.last_frame.empty()) {
          totals.replayed.fetch_add(1, std::memory_order_relaxed);
          return cs.last_frame;
        }
        break;
      case 1:  // bit-flip mid-payload (checksum/MAC should catch it)
        frame[10] = static_cast<std::uint8_t>(frame[10] ^ 0x40);
        totals.flipped.fetch_add(1, std::memory_order_relaxed);
        break;
      default:  // undefined flag bits, checksum fixed up to match
        frame[4] = static_cast<std::uint8_t>(frame[4] | 0x20);
        frame[kItpPacketSize - 1] = xor_checksum(frame.data(), kItpPacketSize - 1);
        totals.garbled.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  cs.last_frame = frame;
  return frame;
}

/// Flush up to kMaxSendBatch queued frames on one connected socket.  On
/// Linux this is a single sendmmsg; kernels without it (ENOSYS) and
/// other platforms fall back to per-datagram send.
void flush_frames(int fd, PendingFrame* frames, std::size_t count, Totals& totals) {
  std::size_t done = 0;
#if defined(__linux__)
  mmsghdr msgs[kMaxSendBatch];
  iovec iovs[kMaxSendBatch];
  std::memset(msgs, 0, sizeof(mmsghdr) * count);
  for (std::size_t i = 0; i < count; ++i) {
    iovs[i].iov_base = frames[i].bytes;
    iovs[i].iov_len = frames[i].len;
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  while (done < count) {
    const int sent = ::sendmmsg(fd, msgs + done, static_cast<unsigned>(count - done), 0);
    if (sent < 0) {
      if (errno == ENOSYS) break;  // per-datagram fallback below
      totals.send_errors.fetch_add(count - done, std::memory_order_relaxed);
      return;
    }
    totals.sent.fetch_add(static_cast<std::uint64_t>(sent), std::memory_order_relaxed);
    done += static_cast<std::size_t>(sent);
  }
#endif
  for (std::size_t i = done; i < count; ++i) {
    if (::send(fd, frames[i].bytes, frames[i].len, 0) < 0) {
      totals.send_errors.fetch_add(1, std::memory_order_relaxed);
    } else {
      totals.sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

/// Rejoin pause for one worker's sessions: wait out the gateway restart,
/// replay the recorded pre-pause frames verbatim (oldest first), then
/// advance every console --rejoin-skip ticks as its clocked sequence
/// would have during the gap.
void rejoin_pause(std::vector<ClientSession*>& sessions, const LoadgenOptions& opt,
                  Totals& totals) {
  std::this_thread::sleep_for(std::chrono::milliseconds(opt.rejoin_pause_ms));
  for (ClientSession* cs : sessions) {
    const std::size_t have =
        std::min<std::uint64_t>(cs->sent_count, cs->sent_ring.size());
    const bool wrapped = cs->sent_count > cs->sent_ring.size();
    for (std::size_t i = 0; i < have; i += kMaxSendBatch) {
      PendingFrame replay[kMaxSendBatch];
      std::size_t n = 0;
      for (; n < kMaxSendBatch && i + n < have; ++n) {
        // Oldest-first: once wrapped, the write cursor is the oldest slot.
        const std::size_t at =
            wrapped ? (cs->sent_pos + i + n) % cs->sent_ring.size() : i + n;
        replay[n] = cs->sent_ring[at];
      }
      flush_frames(cs->fd, replay, n, totals);
      totals.rejoin_replayed.fetch_add(n, std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < opt.rejoin_skip; ++i) (void)cs->console->tick();
  }
}

void run_worker(std::vector<ClientSession*> sessions, const LoadgenOptions& opt,
                const MacKey& key, std::uint64_t ticks, Totals& totals) {
  const std::size_t batch = std::clamp<std::size_t>(opt.batch, 1, kMaxSendBatch);
  std::vector<PendingFrame> pending(batch);
  const auto t0 = std::chrono::steady_clock::now();
  // Every deadline is derived from t0 and the absolute tick index, so
  // per-period integer rounding cannot accumulate into schedule drift
  // over long runs (the old `t0 + trunc(1e9/rate) * tick` form ran fast
  // by up to 1 ns/tick — seconds of skew across a million-tick soak).
  const double tick_ns = 1.0e9 / opt.rate;
  std::uint64_t local_late = 0;
  std::int64_t local_max_late = 0;
  bool rejoined = false;
  // Rejoin shifts every later deadline by the realized pause, so the
  // resumed stream is paced (not a catch-up burst) and late accounting
  // stays meaningful.
  std::chrono::nanoseconds pause_shift{0};
  for (std::uint64_t tick = 0; tick < ticks; tick += batch) {
    const std::uint64_t window = std::min<std::uint64_t>(batch, ticks - tick);
    if (opt.rejoin_at > 0 && !rejoined && tick >= opt.rejoin_at) {
      rejoined = true;
      rejoin_pause(sessions, opt, totals);
      const auto nominal =
          t0 + std::chrono::nanoseconds(
                   static_cast<std::int64_t>(static_cast<double>(tick) * tick_ns));
      pause_shift = std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - nominal);
      if (pause_shift.count() < 0) pause_shift = std::chrono::nanoseconds{0};
    }
    if (!opt.burst) {
      const auto deadline =
          t0 + pause_shift +
          std::chrono::nanoseconds(
              static_cast<std::int64_t>(static_cast<double>(tick) * tick_ns));
      std::this_thread::sleep_until(deadline);
      const std::int64_t late_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                               deadline)
              .count();
      local_max_late = std::max(local_max_late, late_ns);
      // "Late" = the wakeup slipped past this pacing point's whole
      // window, i.e. the next batch was already due before this one hit
      // the wire.
      if (static_cast<double>(late_ns) >= tick_ns * static_cast<double>(window)) ++local_late;
    }
    for (ClientSession* cs : sessions) {
      std::size_t queued = 0;
      for (std::uint64_t k = 0; k < window; ++k) {
        const std::vector<std::uint8_t> frame = build_frame(*cs, opt, key, totals);
        if (opt.loss > 0.0 && cs->rng.uniform() < opt.loss) {
          totals.dropped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        PendingFrame& slot = pending[queued++];
        slot.len = std::min(frame.size(), sizeof slot.bytes);
        std::memcpy(slot.bytes, frame.data(), slot.len);
        if (!rejoined && !cs->sent_ring.empty()) {
          cs->sent_ring[cs->sent_pos] = slot;
          cs->sent_pos = (cs->sent_pos + 1) % cs->sent_ring.size();
          ++cs->sent_count;
        }
      }
      flush_frames(cs->fd, pending.data(), queued, totals);
    }
  }
  totals.late_sends.fetch_add(local_late, std::memory_order_relaxed);
  const auto mine = static_cast<std::uint64_t>(std::max<std::int64_t>(local_max_late, 0));
  std::uint64_t observed = totals.max_late_ns.load(std::memory_order_relaxed);
  while (mine > observed &&
         !totals.max_late_ns.compare_exchange_weak(observed, mine, std::memory_order_relaxed)) {
  }
}

}  // namespace

int main(int argc, char** argv) {
  LoadgenOptions opt;
  std::string out_json;

  FlagSet flags;
  flags.value("--host", &opt.host, "gateway host (default 127.0.0.1)");
  flags.value("--port", &opt.port, "gateway UDP port (required)");
  flags.value("--sessions", &opt.sessions, "concurrent console sessions");
  flags.value("--threads", &opt.threads, "sender threads (0 = auto)");
  flags.value("--batch", &opt.batch,
              "ticks coalesced into one sendmmsg per session (1-64, default 1)");
  flags.value("--rate", &opt.rate, "per-session packet rate, Hz (default 1000)");
  flags.value("--duration", &opt.duration, "seconds of traffic per session");
  flags.value("--loss", &opt.loss, "client-side drop probability [0,1]");
  flags.value("--attack-mix", &opt.attack_mix, "fraction of packets attacked [0,1]");
  flags.flag("--burst", &opt.burst, "no pacing: send as fast as possible");
  flags.flag("--mac", &opt.mac, "seal frames with the SipHash MAC");
  flags.value("--mac-seed", &opt.mac_seed, "MAC key seed (must match the gateway)");
  flags.value("--seed", &opt.seed, "base RNG seed");
  flags.value("--rejoin-at", &opt.rejoin_at,
              "pause at this tick for a gateway restart (0 = no rejoin)");
  flags.value("--rejoin-pause-ms", &opt.rejoin_pause_ms,
              "restart window to wait out (default 1000)");
  flags.value("--rejoin-replay", &opt.rejoin_replay,
              "recorded frames to replay per session after the pause");
  flags.value("--rejoin-skip", &opt.rejoin_skip,
              "console ticks skipped across the pause (clears the rejoin guard)");
  flags.value("--out", &out_json, "write a rg.loadgen/1 JSON summary here");
  if (const Status st = flags.parse(argc, argv, 1); !st.ok()) {
    std::fprintf(stderr, "%s\n\nusage: itp_loadgen [options]\n%s",
                 st.error().to_string().c_str(), flags.help().c_str());
    return 1;
  }
  if (opt.port == 0 || opt.port > 65535 || opt.sessions == 0 || opt.rate <= 0.0) {
    std::fprintf(stderr, "itp_loadgen: --port, --sessions and --rate must be positive\n%s",
                 flags.help().c_str());
    return 1;
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "itp_loadgen: bad host %s\n", opt.host.c_str());
    return 1;
  }

  // One connected socket + console per session; distinct source ports key
  // distinct gateway sessions.
  std::vector<std::unique_ptr<ClientSession>> sessions;
  sessions.reserve(opt.sessions);
  for (std::uint32_t i = 0; i < opt.sessions; ++i) {
    auto cs = std::make_unique<ClientSession>();
    cs->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    // rg-lint: allow(cast) -- BSD sockets API: sockaddr_in is the sockaddr it poses as
    if (cs->fd < 0 || ::connect(cs->fd, reinterpret_cast<const sockaddr*>(&addr),
                                sizeof(addr)) != 0) {
      std::perror("itp_loadgen: socket/connect");
      return 1;
    }
    auto trajectory = std::make_shared<CircleTrajectory>(
        Position{0.09, 0.0, -0.11}, 0.010 + 0.0001 * static_cast<double>(i % 16), 2.5, 1.0e9);
    cs->console = std::make_unique<MasterConsole>(std::move(trajectory),
                                                  PedalSchedule::hold_from(0.05));
    cs->rng = Pcg32(opt.seed * 0x9e3779b97f4a7c15ULL + i);
    if (opt.rejoin_at > 0 && opt.rejoin_replay > 0) cs->sent_ring.resize(opt.rejoin_replay);
    sessions.push_back(std::move(cs));
  }

  const std::uint32_t hw = std::max(1U, std::thread::hardware_concurrency());
  const std::uint32_t threads =
      opt.threads > 0 ? opt.threads : std::min(opt.sessions, std::min(hw, 8U));
  const auto ticks = static_cast<std::uint64_t>(opt.duration * opt.rate);
  const MacKey key = MacKey::from_seed(opt.mac_seed);

  Totals totals;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::vector<ClientSession*> mine;
    for (std::uint32_t i = t; i < opt.sessions; i += threads) mine.push_back(sessions[i].get());
    pool.emplace_back(run_worker, std::move(mine), std::cref(opt), std::cref(key),
                      ticks, std::ref(totals));
  }
  for (std::thread& th : pool) th.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const std::uint64_t sent = totals.sent.load();
  std::printf(
      "itp_loadgen: %u sessions x %llu ticks in %.3f s — sent %llu, dropped %llu, "
      "replayed %llu, flipped %llu, garbled %llu, errors %llu\n",
      opt.sessions, static_cast<unsigned long long>(ticks), elapsed,
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(totals.dropped.load()),
      static_cast<unsigned long long>(totals.replayed.load()),
      static_cast<unsigned long long>(totals.flipped.load()),
      static_cast<unsigned long long>(totals.garbled.load()),
      static_cast<unsigned long long>(totals.send_errors.load()));
  if (!opt.burst) {
    std::printf("itp_loadgen: pacing batch %u, late sends %llu, max late %.3f ms\n", opt.batch,
                static_cast<unsigned long long>(totals.late_sends.load()),
                static_cast<double>(totals.max_late_ns.load()) / 1.0e6);
  }
  if (opt.rejoin_at > 0) {
    std::printf("itp_loadgen: rejoin at tick %llu (paused %u ms) — replayed %llu, skipped %u\n",
                static_cast<unsigned long long>(opt.rejoin_at), opt.rejoin_pause_ms,
                static_cast<unsigned long long>(totals.rejoin_replayed.load()),
                opt.rejoin_skip);
  }

  if (!out_json.empty()) {
    std::ofstream os(out_json);
    os << "{\n  \"schema\": \"rg.loadgen/1\",\n"
       << "  \"sessions\": " << opt.sessions << ",\n  \"ticks\": " << ticks << ",\n"
       << "  \"elapsed_sec\": " << elapsed << ",\n  \"sent\": " << sent << ",\n"
       << "  \"dropped\": " << totals.dropped.load() << ",\n"
       << "  \"replayed\": " << totals.replayed.load() << ",\n"
       << "  \"flipped\": " << totals.flipped.load() << ",\n"
       << "  \"garbled\": " << totals.garbled.load() << ",\n"
       << "  \"send_errors\": " << totals.send_errors.load() << ",\n"
       << "  \"batch\": " << opt.batch << ",\n"
       << "  \"late_sends\": " << totals.late_sends.load() << ",\n"
       << "  \"max_late_ns\": " << totals.max_late_ns.load() << ",\n"
       << "  \"rejoin_at\": " << opt.rejoin_at << ",\n"
       << "  \"rejoin_replayed\": " << totals.rejoin_replayed.load() << "\n}\n";
  }
  return 0;
}
