// raven_gateway: the teleoperation gateway server.
//
// Binds a UDP socket, accepts ITP datagrams from any number of consoles
// (one session per source endpoint), and drives each session's
// server-side detection stack through the sharded executor.  Drive it
// with tools/itp_loadgen.cpp.
//
//   raven_gateway --port 0 --port-file /tmp/gw.port --shards 4
//                 --duration 5 --stats-out gw_stats.json
//
// --port 0 binds an ephemeral port; --port-file publishes the bound port
// for scripted harnesses (scripts/tier1.sh).  With --duration 0 the
// server runs until SIGINT/SIGTERM.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include <memory>

#include "common/flags.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "persist/journal_sink.hpp"
#include "persist/state_plane.hpp"
#include "sim/threshold_store.hpp"
#include "svc/admin.hpp"
#include "svc/gateway.hpp"
#include "svc/udp_transport.hpp"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

std::uint64_t steady_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void write_stats_json(const std::string& path, const rg::svc::TeleopGateway& gateway,
                      const rg::persist::StatePlane* plane, std::uint16_t port,
                      double elapsed_sec) {
  const rg::svc::GatewayStats s = gateway.stats();
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"schema\": \"rg.gateway.stats/1\",\n";
  os << "  \"port\": " << port << ",\n";
  os << "  \"elapsed_sec\": " << elapsed_sec << ",\n";
  os << "  \"datagrams\": " << s.datagrams << ",\n";
  os << "  \"accepted\": " << s.accepted << ",\n";
  os << "  \"rejected_size\": " << s.rejected_size << ",\n";
  os << "  \"rejected_mac\": " << s.rejected_mac << ",\n";
  os << "  \"rejected_checksum\": " << s.rejected_checksum << ",\n";
  os << "  \"rejected_flags\": " << s.rejected_flags << ",\n";
  os << "  \"rejected_duplicate\": " << s.rejected_duplicate << ",\n";
  os << "  \"rejected_replayed\": " << s.rejected_replayed << ",\n";
  os << "  \"rejected_stale\": " << s.rejected_stale << ",\n";
  os << "  \"rejected_session_limit\": " << s.rejected_session_limit << ",\n";
  os << "  \"backpressure_dropped\": " << s.backpressure_dropped << ",\n";
  os << "  \"out_of_order_accepted\": " << s.out_of_order_accepted << ",\n";
  os << "  \"sessions_opened\": " << s.sessions_opened << ",\n";
  os << "  \"sessions_evicted\": " << s.sessions_evicted << ",\n";
  os << "  \"drift_checks\": " << s.drift_checks << ",\n";
  os << "  \"drift_alarms\": " << s.drift_alarms << ",\n";
  os << "  \"rejected_estop\": " << s.rejected_estop << ",\n";
  os << "  \"sessions_restored\": " << s.sessions_restored << ",\n";
  if (plane != nullptr) {
    const rg::persist::StatePlaneStats ps = plane->stats();
    os << "  \"persist\": {\"outcome\": \"" << to_string(plane->recovery().outcome)
       << "\", \"reason\": \"" << plane->recovery().reason
       << "\", \"state_digest\": \"" << std::hex << plane->state_digest() << std::dec
       << "\", \"ops_submitted\": " << ps.ops_submitted
       << ", \"ops_dropped\": " << ps.ops_dropped << ", \"ops_applied\": " << ps.ops_applied
       << ", \"flushes\": " << ps.flushes << ", \"wal_records\": " << ps.store.wal_records
       << ", \"snapshots\": " << ps.store.snapshots
       << ", \"journal_records\": " << ps.journal.records << "},\n";
  }
  os << "  \"sessions\": [";
  const auto sessions = gateway.sessions();
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const rg::svc::SessionStats& ss = sessions[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"id\": " << ss.id << ", \"endpoint\": \"" << ss.endpoint.to_string()
       << "\", \"active\": " << (ss.active ? "true" : "false")
       << ", \"accepted\": " << ss.counters.accepted
       << ", \"replayed\": " << ss.counters.replayed
       << ", \"duplicates\": " << ss.counters.duplicates
       << ", \"lost_gap\": " << ss.counters.lost_gap << ", \"ticks\": " << ss.shard.ticks
       << ", \"alarms\": " << ss.shard.alarms << ", \"blocked\": " << ss.shard.blocked
       << ", \"digest\": \"" << std::hex << ss.shard.digest << std::dec << "\"}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;

  std::uint32_t port = 0;
  std::string bind_address = "127.0.0.1";
  std::uint32_t shards = 2;
  std::uint32_t max_sessions = 256;
  std::uint64_t idle_timeout_ms = 2000;
  std::uint64_t max_queue = 8192;
  std::uint64_t rx_batch = 64;
  bool mac = false;
  std::uint64_t mac_seed = 7;
  double duration = 0.0;
  bool inline_shards = false;
  std::string metrics_out;
  std::string stats_out;
  std::string port_file;
  std::string events_out;
  int admin_port = -1;
  std::string admin_port_file;
  bool calibrate = false;
  std::string thresholds_path;
  int thresholds_epoch = -1;
  double drift_ratio = 1.25;
  std::uint64_t drift_min_samples = 512;
  std::string state_dir;
  std::uint32_t rejoin_guard = 256;
  std::uint64_t persist_flush_ms = 25;

  FlagSet flags;
  flags.value("--port", &port, "UDP port to bind (0 = ephemeral)");
  flags.value("--bind", &bind_address, "bind address (default 127.0.0.1)");
  flags.value("--shards", &shards, "worker shards");
  flags.value("--max-sessions", &max_sessions, "session table capacity");
  flags.value("--idle-timeout-ms", &idle_timeout_ms, "evict sessions idle this long");
  flags.value("--max-queue", &max_queue, "per-shard SPSC ring capacity");
  flags.value("--rx-batch", &rx_batch, "datagrams drained per recvmmsg batch (default 64)");
  flags.flag("--mac", &mac, "require 38-byte SipHash MAC frames");
  flags.value("--mac-seed", &mac_seed, "MAC key seed");
  flags.value("--duration", &duration, "run this many seconds (0 = until SIGINT)");
  flags.flag("--inline", &inline_shards, "run shards on the pump thread");
  flags.value("--metrics-out", &metrics_out, "write rg.metrics/1 JSON here on exit");
  flags.value("--stats-out", &stats_out, "write rg.gateway.stats/1 JSON here on exit");
  flags.value("--port-file", &port_file, "write the bound port here once listening");
  flags.value("--admin-port", &admin_port,
              "TCP admin/metrics endpoint port (-1 = disabled, 0 = ephemeral)");
  flags.value("--admin-port-file", &admin_port_file,
              "write the bound admin port here once serving");
  flags.flag("--calibrate", &calibrate,
             "per-session calibration sketches + drift alarms (needs --thresholds)");
  flags.value("--thresholds", &thresholds_path,
              "epoch-based threshold store supplying the committed drift baseline");
  flags.value("--thresholds-epoch", &thresholds_epoch,
              "epoch id to load from --thresholds (-1 = active epoch)");
  flags.value("--drift-ratio", &drift_ratio, "drift when observed > committed * ratio");
  flags.value("--drift-min-samples", &drift_min_samples,
              "predictions before a session may drift");
  flags.value("--events-out", &events_out, "write rg.events/1 JSONL (cal_drift records) here");
  flags.value("--state-dir", &state_dir,
              "crash-consistent state directory (journal + snapshot + WAL); restart "
              "restores sessions exactly or fails safe to latched E-STOP");
  flags.value("--rejoin-guard", &rejoin_guard,
              "advance restored anti-replay windows by this many seqs (covers the "
              "unsynced tail; default 256)");
  flags.value("--persist-flush-ms", &persist_flush_ms,
              "state plane group-commit period in ms (default 25)");
  if (const Status st = flags.parse(argc, argv, 1); !st.ok()) {
    std::fprintf(stderr, "%s\n\nusage: raven_gateway [options]\n%s",
                 st.error().to_string().c_str(), flags.help().c_str());
    return 1;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  svc::UdpSocketConfig socket_config;
  socket_config.bind_address = bind_address;
  socket_config.port = static_cast<std::uint16_t>(port);

  try {
    svc::UdpSocketTransport transport(socket_config);
    std::printf("raven_gateway listening on %s (%u shards)\n", transport.describe().c_str(),
                shards);
    if (!port_file.empty()) {
      std::ofstream pf(port_file);
      pf << transport.bound_port() << "\n";
    }

    svc::GatewayConfig config;
    config.shards = shards;
    config.threaded = !inline_shards;
    config.max_sessions = max_sessions;
    config.idle_timeout_ms = idle_timeout_ms;
    config.max_queue_per_shard = max_queue;
    config.rx_batch = rx_batch;
    config.require_mac = mac;
    config.mac_key = MacKey::from_seed(mac_seed);

    obs::EventLog events;
    std::uint64_t loaded_epoch_id = 0;
    std::uint64_t loaded_epoch_digest = 0;
    if (calibrate) {
      if (thresholds_path.empty()) {
        std::fprintf(stderr, "--calibrate requires --thresholds <epoch store>\n");
        return 1;
      }
      ThresholdStore store(thresholds_path);
      const Result<ThresholdEpoch> epoch =
          thresholds_epoch < 0 ? store.active()
                               : store.epoch(static_cast<std::uint64_t>(thresholds_epoch));
      if (!epoch.ok()) {
        std::fprintf(stderr, "cannot load drift baseline: %s\n",
                     epoch.error().to_string().c_str());
        return 1;
      }
      config.calibration.enabled = true;
      config.calibration.committed = epoch.value().thresholds;
      loaded_epoch_id = epoch.value().id;
      {
        const DetectionThresholds& th = epoch.value().thresholds;
        std::uint64_t d = persist::fnv1a64(th.motor_vel.v.data(), 3 * sizeof(double));
        d = persist::fnv1a64(th.motor_acc.v.data(), 3 * sizeof(double), d);
        d = persist::fnv1a64(th.joint_vel.v.data(), 3 * sizeof(double), d);
        loaded_epoch_digest = d;
      }
      config.calibration.max_ratio = drift_ratio;
      config.calibration.min_samples = drift_min_samples;
      config.events = &events;
      std::printf("calibration on: drift baseline epoch %llu from %s\n",
                  static_cast<unsigned long long>(epoch.value().id), thresholds_path.c_str());
    }
    // The state plane must outlive the gateway: the gateway's shutdown
    // path submits kClose ops that the plane's destructor makes durable.
    std::unique_ptr<persist::StatePlane> plane;
    std::unique_ptr<persist::JournalEventSink> journal_sink;
    if (!state_dir.empty()) {
      persist::StatePlaneConfig pc;
      pc.dir = state_dir;
      pc.flush_period_ms = persist_flush_ms;
      auto opened = persist::StatePlane::open(pc);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open state plane %s: %s\n", state_dir.c_str(),
                     opened.error().to_string().c_str());
        return 1;
      }
      plane = std::move(opened.value());
      config.persist = plane.get();
      config.rejoin_guard = rejoin_guard;
      config.events = &events;
      journal_sink = std::make_unique<persist::JournalEventSink>(plane->journal());
      events.set_sink(journal_sink.get());
      std::printf("state plane %s: recovery %s%s%s\n", state_dir.c_str(),
                  std::string(to_string(plane->recovery().outcome)).c_str(),
                  plane->recovery().reason.empty() ? "" : " reason=",
                  plane->recovery().reason.c_str());
      if (plane->fail_safe()) {
        std::fprintf(stderr,
                     "state plane recovery FAILED: gateway is latched fail-safe and will "
                     "reject all traffic (inspect %s)\n",
                     state_dir.c_str());
      }
    }
    svc::TeleopGateway gateway(config, transport);
    if (plane != nullptr && !plane->fail_safe()) {
      // Note the active threshold epoch so a restart can assert it is
      // still calibrated against the same baseline.
      if (calibrate) {
        persist::StateOp op;
        op.kind = persist::StateOp::Kind::kEpoch;
        op.a = loaded_epoch_id;
        op.b = loaded_epoch_digest;
        (void)plane->submit(op);
      }
    }

    std::unique_ptr<svc::AdminServer> admin;
    if (admin_port >= 0) {
      svc::AdminConfig admin_config;
      admin_config.bind_address = bind_address;
      admin_config.port = static_cast<std::uint16_t>(admin_port);
      admin = std::make_unique<svc::AdminServer>(admin_config, &gateway);
      admin->set_event_log(&events);
      if (plane != nullptr) admin->set_state_plane(plane.get());
      // First snapshot before traffic so /readyz and /stats are answerable
      // the moment the admin port is published.
      gateway.publish_snapshot(steady_ms());
      std::printf("admin endpoint on %s:%u\n", bind_address.c_str(), admin->bound_port());
      if (!admin_port_file.empty()) {
        std::ofstream pf(admin_port_file);
        pf << admin->bound_port() << "\n";
      }
    }

    const std::uint64_t t0 = steady_ms();
    const auto deadline =
        duration > 0.0 ? t0 + static_cast<std::uint64_t>(duration * 1000.0) : UINT64_MAX;
    while (!g_stop.load()) {
      const std::uint64_t now = steady_ms();
      if (now >= deadline) break;
      if (gateway.pump(now) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    const double elapsed = static_cast<double>(steady_ms() - t0) / 1000.0;
    if (calibrate) {
      // Final drift pass over whatever is still active, so short runs are
      // checked even if the pump-side throttle never fired.
      gateway.drain();
      (void)gateway.scan_drift_now(steady_ms());
    }
    gateway.shutdown();
    if (plane != nullptr) {
      events.set_sink(nullptr);
      plane->stop();  // final flush: the shutdown kClose ops become durable
    }

    const svc::GatewayStats s = gateway.stats();
    std::printf("gateway: %llu datagrams, %llu accepted, %llu sessions, %llu evicted\n",
                static_cast<unsigned long long>(s.datagrams),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.sessions_opened),
                static_cast<unsigned long long>(s.sessions_evicted));

    if (!stats_out.empty()) {
      write_stats_json(stats_out, gateway, plane.get(), transport.bound_port(), elapsed);
    }
    if (!events_out.empty() && !events.write_jsonl_file(events_out)) {
      std::fprintf(stderr, "cannot write %s\n", events_out.c_str());
    }
    if (!metrics_out.empty()) {
      if (!obs::Registry::global().snapshot().write_json_file(metrics_out)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "raven_gateway: %s\n", e.what());
    return 1;
  }
  return 0;
}
