// raven_guard_cli — command-line driver for the simulator, the attack
// engine, the detection framework, and the campaign engine.
//
//   raven_guard_cli learn   [--runs N] [--seed S] [--jobs N] [--out FILE]
//   raven_guard_cli run     [--seed S] [--duration SEC]
//                           [--trajectory random|circle|suture|FILE.csv]
//                           [--attack none|torque|user-input|hijack|drop|
//                                     math|encoder|state-spoof]
//                           [--magnitude V] [--attack-duration MS]
//                           [--attack-delay MS]
//                           [--thresholds FILE] [--mitigate]
//                           [--trace FILE.csv] [--plots PREFIX]
//                           [--metrics-out FILE] [--trace-out FILE]
//                           [--events-out FILE]
//   raven_guard_cli sweep   [--runs N] [--seed S] [--jobs N] [--json PATH]
//                           [--attack NAME] [--attack-duration MS]
//                           [--thresholds FILE] [--mitigate]
//                           [--metrics-out FILE] [--trace-out FILE]
//                           [--events-out FILE]
//   raven_guard_cli analyze [--seed S] [--out PREFIX]
//
// `learn` learns detection thresholds over a fault-free campaign and
// writes a thresholds file; `run` executes one session and reports the
// outcome (exit code 2 if an adverse impact occurred); `sweep` runs an
// attack-magnitude grid through the campaign engine and can emit the
// machine-readable JSON report; `analyze` replays the attacker's offline
// analysis on a fresh capture.  All subcommands share the flag parser,
// so --jobs/--seed/--runs/--json behave identically everywhere.
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "common/flags.hpp"
#include "obs/obs.hpp"
#include "sim/campaign.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "sim/threshold_store.hpp"
#include "trajectory/recorded.hpp"
#include "viz/trace_plots.hpp"

namespace rg {
namespace {

void usage() {
  std::fprintf(stderr,
               "usage: raven_guard_cli <learn|run|sweep|analyze|thresholds> [options]\n"
               "  learn:   --runs N --seed S --jobs N --out FILE\n"
               "           --thresholds-percentile P --thresholds-margin M\n"
               "  run:     --seed S --duration SEC --trajectory random|circle|suture|FILE.csv\n"
               "           --attack none|torque|user-input|hijack|drop|math|encoder|state-spoof\n"
               "           --magnitude V --attack-duration MS --attack-delay MS\n"
               "           --thresholds FILE --mitigate --trace FILE.csv --plots PREFIX\n"
               "           --metrics-out FILE --trace-out FILE --events-out FILE\n"
               "  sweep:   --runs N --seed S --jobs N --json PATH --attack NAME\n"
               "           --attack-duration MS --thresholds FILE --mitigate\n"
               "           --metrics-out FILE --trace-out FILE --events-out FILE\n"
               "  analyze: --seed S --out PREFIX\n"
               "  thresholds: --file FILE [--history] [--rollback ID]\n"
               "  run/sweep --thresholds takes an epoch store; --thresholds-epoch picks an\n"
               "  epoch (-1 = active).\n");
}

int flag_error(const FlagSet& flags, const Status& status) {
  std::fprintf(stderr, "%s\n\noptions:\n%s", status.error().to_string().c_str(),
               flags.help().c_str());
  return 1;
}

std::shared_ptr<const Trajectory> build_trajectory(const std::string& name,
                                                   std::uint64_t seed) {
  if (name == "random") {
    Pcg32 rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234);
    auto base = std::make_shared<WaypointTrajectory>(
        make_random_trajectory(rng, WorkspaceBox{}, 6, 0.02));
    return std::make_shared<TremorDecorator>(base, seed ^ 0xABCDEF);
  }
  if (name == "circle") {
    return std::make_shared<CircleTrajectory>(Position{0.09, 0.0, -0.11}, 0.012, 2.5, 3.0);
  }
  if (name == "suture") {
    return std::make_shared<SutureTrajectory>(Position{0.085, -0.03, -0.105},
                                              Vec3{0.0, 1.0, 0.0}, 4);
  }
  // Anything else: a recorded-trajectory CSV path.
  std::ifstream is(name);
  if (!is) {
    std::fprintf(stderr, "cannot open trajectory file %s\n", name.c_str());
    return nullptr;
  }
  auto loaded = RecordedTrajectory::from_csv(is);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bad trajectory CSV: %s\n", loaded.error().to_string().c_str());
    return nullptr;
  }
  return std::make_shared<RecordedTrajectory>(std::move(loaded).value());
}

AttackVariant parse_attack(const std::string& name) {
  if (name == "torque") return AttackVariant::kTorqueInjection;
  if (name == "user-input") return AttackVariant::kUserInputInjection;
  if (name == "hijack") return AttackVariant::kTrajectoryHijack;
  if (name == "drop") return AttackVariant::kConsoleDrop;
  if (name == "math") return AttackVariant::kMathDrift;
  if (name == "encoder") return AttackVariant::kEncoderCorruption;
  if (name == "state-spoof") return AttackVariant::kStateSpoof;
  return AttackVariant::kNone;
}

/// Loads thresholds from the epoch store at `path` when given; nullopt
/// (and ok) when empty.  `epoch_id` picks a specific epoch (-1 = active).
bool load_threshold_file(const std::string& path, int epoch_id,
                         std::optional<DetectionThresholds>& out) {
  if (path.empty()) return true;
  ThresholdStore store(path);
  const Result<ThresholdEpoch> epoch =
      epoch_id < 0 ? store.active() : store.epoch(static_cast<std::uint64_t>(epoch_id));
  if (!epoch.ok()) {
    std::fprintf(stderr, "cannot read thresholds from %s: %s\n", path.c_str(),
                 epoch.error().to_string().c_str());
    return false;
  }
  out = epoch.value().thresholds;
  return true;
}

/// Shared --metrics-out/--trace-out/--events-out plumbing for the
/// session-running subcommands (run, sweep).  Owns the opt-in sinks and
/// writes whichever files were requested after the sessions finish.
struct Telemetry {
  std::string metrics_out;
  std::string trace_out;
  std::string events_out;
  obs::TraceWriter writer;
  obs::EventLog events;

  void register_flags(FlagSet& flags) {
    flags.value("--metrics-out", &metrics_out,
                "write the metrics snapshot as JSON (rg.metrics/1)");
    flags.value("--trace-out", &trace_out,
                "write a Chrome trace-event JSON loadable in Perfetto");
    flags.value("--events-out", &events_out,
                "write the safety-event log as JSONL (rg.events/1)");
  }

  [[nodiscard]] bool events_wanted() const noexcept { return !events_out.empty(); }

  /// Arm the process-wide sinks (span -> trace writer, RG_LOG -> events).
  void begin() noexcept {
    if (!trace_out.empty()) writer.install();
    if (events_wanted()) obs::attach_log_events(&events);
  }

  /// Disarm and write the requested files; returns false on any I/O error.
  bool finish() {
    writer.uninstall();
    obs::attach_log_events(nullptr);
    bool ok = true;
    if (!metrics_out.empty()) {
      if (obs::Registry::global().snapshot().write_json_file(metrics_out)) {
        std::printf("  metrics            : %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
        ok = false;
      }
    }
    if (!trace_out.empty()) {
      if (writer.write_json_file(trace_out)) {
        std::printf("  trace events       : %s (%zu spans)\n", trace_out.c_str(),
                    writer.events());
      } else {
        std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
        ok = false;
      }
    }
    if (events_wanted()) {
      if (events.write_jsonl_file(events_out)) {
        std::printf("  event log          : %s (%zu events)\n", events_out.c_str(),
                    events.size());
      } else {
        std::fprintf(stderr, "cannot write %s\n", events_out.c_str());
        ok = false;
      }
    }
    return ok;
  }
};

CampaignProgressFn stderr_progress() {
  return [](const CampaignProgress& p) {
    if (p.completed == p.total || p.completed % 50 == 0) {
      std::fprintf(stderr, "  [%zu/%zu sessions]\n", p.completed, p.total);
    }
  };
}

int cmd_learn(int argc, char** argv) {
  int runs = 100;
  std::uint64_t seed = 42;
  int jobs = 0;
  std::string out = "thresholds.txt";
  double percentile = kDefaultThresholdPercentile;
  double margin = kDefaultThresholdMargin;
  FlagSet flags;
  flags.value("--runs", &runs, "fault-free training runs (default 100)");
  flags.value("--seed", &seed, "base session seed (default 42)");
  flags.value("--jobs", &jobs, "worker threads (default: RG_JOBS or all cores)");
  flags.value("--out", &out, "threshold epoch store (default thresholds.txt)");
  flags.value("--thresholds-percentile", &percentile,
              "percentile of per-run maxima (default 99.85, paper Sec. IV.C)");
  flags.value("--thresholds-margin", &margin, "safety factor on the limits (default 1)");
  if (const Status st = flags.parse(argc, argv); !st.ok()) return flag_error(flags, st);

  SessionParams p;
  p.seed = seed;
  std::printf("learning thresholds from %d fault-free runs...\n", runs);
  LearnOptions options;
  options.percentile = percentile;
  options.margin = margin;
  options.jobs = jobs;
  options.progress = stderr_progress();
  const Result<DetectionThresholds> learned = learn_thresholds(p, runs, options);
  if (!learned.ok()) {
    std::fprintf(stderr, "learning failed: %s\n", learned.error().to_string().c_str());
    return 1;
  }
  const DetectionThresholds& th = learned.value();
  ThresholdStore store(out);
  ThresholdProvenance prov;
  prov.source = "cli-learn";
  prov.runs = static_cast<std::uint64_t>(runs);
  prov.percentile = percentile;
  prov.margin = margin;
  const Result<std::uint64_t> epoch = store.commit(th, prov);
  if (!epoch.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 epoch.error().to_string().c_str());
    return 1;
  }
  std::printf("thresholds committed to %s as epoch %llu\n", out.c_str(),
              static_cast<unsigned long long>(epoch.value()));
  std::printf("  motor vel  %.3f %.3f %.3f rad/s\n", th.motor_vel[0], th.motor_vel[1],
              th.motor_vel[2]);
  std::printf("  motor acc  %.0f %.0f %.0f rad/s^2\n", th.motor_acc[0], th.motor_acc[1],
              th.motor_acc[2]);
  std::printf("  joint vel  %.4f %.4f %.5f rad/s|m/s\n", th.joint_vel[0], th.joint_vel[1],
              th.joint_vel[2]);
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::uint64_t seed = 42;
  double duration = 6.0;
  std::string trajectory = "random";
  std::string attack = "none";
  double magnitude = 20000.0;
  std::uint32_t attack_duration_ms = 64;
  std::uint32_t attack_delay_ms = 400;
  std::string thresholds_file;
  int thresholds_epoch = -1;
  bool mitigate = false;
  std::string trace_file;
  std::string plots_prefix;
  Telemetry telemetry;
  FlagSet flags;
  flags.value("--seed", &seed, "session seed (default 42)");
  flags.value("--duration", &duration, "session length in seconds (default 6)");
  flags.value("--trajectory", &trajectory, "random|circle|suture|FILE.csv");
  flags.value("--attack", &attack,
              "none|torque|user-input|hijack|drop|math|encoder|state-spoof");
  flags.value("--magnitude", &magnitude, "attack magnitude (default 20000)");
  flags.value("--attack-duration", &attack_duration_ms, "attack active period, ms");
  flags.value("--attack-delay", &attack_delay_ms, "delay before the attack, ms");
  flags.value("--thresholds", &thresholds_file, "threshold epoch store (arms the detector)");
  flags.value("--thresholds-epoch", &thresholds_epoch, "epoch id to load (-1 = active)");
  flags.flag("--mitigate", &mitigate, "block offending commands and E-STOP");
  flags.value("--trace", &trace_file, "write a per-tick CSV trace");
  flags.value("--plots", &plots_prefix, "write joint/tool SVG plots");
  telemetry.register_flags(flags);
  if (const Status st = flags.parse(argc, argv); !st.ok()) return flag_error(flags, st);

  auto traj = build_trajectory(trajectory, seed);
  if (!traj) return 1;

  std::optional<DetectionThresholds> thresholds;
  if (!load_threshold_file(thresholds_file, thresholds_epoch, thresholds)) return 1;

  SessionParams p;
  p.seed = seed;
  p.duration_sec = duration;
  SimConfig cfg = make_session(
      p, thresholds, mitigate ? MitigationMode::kArmed : MitigationMode::kObserveOnly);
  cfg.trajectory = traj;

  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  if (!trace_file.empty() || !plots_prefix.empty()) sim.set_trace(&trace);

  telemetry.begin();
  obs::FlightRecorder flight;
  if (telemetry.events_wanted()) {
    sim.set_event_log(&telemetry.events,
                      {{"seed", seed}, {"attack", attack}});
    sim.set_flight_recorder(&flight);
  }

  AttackSpec spec;
  spec.variant = parse_attack(attack);
  spec.magnitude = magnitude;
  spec.duration_packets = attack_duration_ms;
  spec.delay_packets = attack_delay_ms;
  spec.seed = seed * 131 + 17;
  const AttackArtifacts artifacts = build_attack(spec);
  sim.install(artifacts);

  sim.run(duration);

  const RunOutcome& out = sim.outcome();
  std::printf("session: seed=%llu trajectory=%s attack=%s\n",
              static_cast<unsigned long long>(seed), trajectory.c_str(), attack.c_str());
  std::printf("  final state        : %s\n", to_string(sim.control().state()).data());
  std::printf("  injections         : %llu\n",
              static_cast<unsigned long long>(artifacts.injections()));
  std::printf("  max abrupt jump    : %.3f mm\n", 1000.0 * out.max_ee_jump_window);
  std::printf("  adverse impact     : %s\n", out.adverse_impact() ? "YES" : "no");
  std::printf("  cables snapped     : %s\n", out.cable_snapped ? "YES" : "no");
  std::printf("  RAVEN checks fired : %s\n", out.raven_detected() ? "yes" : "no");
  if (thresholds) {
    std::printf("  detector alarm     : %s%s\n", out.detector_alarmed() ? "yes" : "no",
                out.detector_alarmed() && out.detected_preemptively() ? " (preemptive)" : "");
  }

  if (!trace_file.empty()) {
    std::ofstream os(trace_file);
    trace.write_csv(os);
    std::printf("  trace              : %s\n", trace_file.c_str());
  }
  if (!plots_prefix.empty()) {
    {
      std::ofstream os(plots_prefix + "_joints.svg");
      joint_position_chart(trace).render(os);
    }
    {
      std::ofstream os(plots_prefix + "_tool.svg");
      end_effector_chart(trace).render(os);
    }
    std::printf("  plots              : %s_joints.svg, %s_tool.svg\n", plots_prefix.c_str(),
                plots_prefix.c_str());
  }
  if (spec.variant == AttackVariant::kMathDrift) reset_math_drift();
  if (!telemetry.finish()) return 1;
  return out.adverse_impact() ? 2 : 0;
}

int cmd_sweep(int argc, char** argv) {
  int runs = 10;
  std::uint64_t seed = 42;
  int jobs = 0;
  std::string json_path;
  std::string attack = "torque";
  std::uint32_t attack_duration_ms = 96;
  std::string thresholds_file;
  int thresholds_epoch = -1;
  bool mitigate = false;
  Telemetry telemetry;
  FlagSet flags;
  flags.value("--runs", &runs, "sessions per magnitude (default 10)");
  flags.value("--seed", &seed, "base seed for the grid (default 42)");
  flags.value("--jobs", &jobs, "worker threads (default: RG_JOBS or all cores)");
  flags.value("--json", &json_path, "write the campaign report as JSON");
  flags.value("--attack", &attack,
              "none|torque|user-input|hijack|drop|math|encoder|state-spoof");
  flags.value("--attack-duration", &attack_duration_ms, "attack active period, ms");
  flags.value("--thresholds", &thresholds_file, "threshold epoch store (arms the detector)");
  flags.value("--thresholds-epoch", &thresholds_epoch, "epoch id to load (-1 = active)");
  flags.flag("--mitigate", &mitigate, "block offending commands and E-STOP");
  telemetry.register_flags(flags);
  if (const Status st = flags.parse(argc, argv); !st.ok()) return flag_error(flags, st);
  if (runs < 1) {
    std::fprintf(stderr, "--runs must be positive\n");
    return 1;
  }

  std::optional<DetectionThresholds> thresholds;
  if (!load_threshold_file(thresholds_file, thresholds_epoch, thresholds)) return 1;

  const AttackVariant variant = parse_attack(attack);
  const std::vector<double> magnitudes = {2000, 8000, 14000, 20000, 26000, 32000};

  std::vector<CampaignJob> campaign_jobs;
  campaign_jobs.reserve(magnitudes.size() * static_cast<std::size_t>(runs));
  for (std::size_t m = 0; m < magnitudes.size(); ++m) {
    for (int rep = 0; rep < runs; ++rep) {
      CampaignJob job;
      job.attack.variant = variant;
      job.attack.magnitude = magnitudes[m];
      job.attack.duration_packets = attack_duration_ms;
      job.attack.delay_packets = 400 + static_cast<std::uint32_t>(rep) * 131;
      job.attack.seed = seed * 977 + campaign_jobs.size() * 13 + 1;
      job.params.seed = seed + static_cast<std::uint64_t>(rep) * 37 + m * 1009;
      job.thresholds = thresholds;
      job.mitigation = mitigate ? MitigationMode::kArmed : MitigationMode::kObserveOnly;
      job.label = attack + "@" + std::to_string(static_cast<long long>(magnitudes[m]));
      campaign_jobs.push_back(std::move(job));
    }
  }

  // One shared (thread-safe) event log, one flight recorder per job: the
  // per-job "job"/"label" context fields keep interleaved events
  // attributable, and the ring dumps cannot cross sessions.
  telemetry.begin();
  std::vector<obs::FlightRecorder> flights;
  if (telemetry.events_wanted()) {
    flights.reserve(campaign_jobs.size());
    for (std::size_t i = 0; i < campaign_jobs.size(); ++i) flights.emplace_back();
    for (std::size_t i = 0; i < campaign_jobs.size(); ++i) {
      CampaignJob& job = campaign_jobs[i];
      job.instrument = [&telemetry, &flights, i, label = job.label](SurgicalSim& sim) {
        sim.set_event_log(&telemetry.events,
                          {{"job", static_cast<std::uint64_t>(i)}, {"label", label}});
        sim.set_flight_recorder(&flights[i]);
      };
    }
  }

  CampaignOptions options;
  options.jobs = jobs;
  options.progress = stderr_progress();
  const CampaignReport report = CampaignRunner(options).run(std::move(campaign_jobs));

  std::printf("sweep: %zu sessions on %d workers, %.0f ms wall (%.2fx vs serial), "
              "%.0f kticks/s\n",
              report.jobs(), report.workers, report.wall_ms, report.speedup(),
              report.ticks_per_sec() / 1000.0);
  std::printf("\n  %10s %8s %8s %8s %10s\n", "value", "impacts", "alarms", "preempt",
              "jump (mm)");
  for (std::size_t m = 0; m < magnitudes.size(); ++m) {
    int impacts = 0, alarms = 0, preemptive = 0;
    double jump = 0.0;
    for (int rep = 0; rep < runs; ++rep) {
      const AttackRunResult& r =
          report.results[m * static_cast<std::size_t>(runs) + static_cast<std::size_t>(rep)]
              .run;
      if (r.impact()) ++impacts;
      if (r.outcome.detector_alarmed()) ++alarms;
      if (r.outcome.detected_preemptively()) ++preemptive;
      jump += 1000.0 * r.outcome.max_ee_jump_window / runs;
    }
    std::printf("  %10.0f %5d/%-2d %5d/%-2d %5d/%-2d %10.2f\n", magnitudes[m], impacts,
                runs, alarms, runs, preemptive, runs, jump);
  }

  if (!json_path.empty()) {
    if (!report.write_json_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\n  campaign report written to %s\n", json_path.c_str());
  }
  if (!telemetry.finish()) return 1;
  return 0;
}

int cmd_thresholds(int argc, char** argv) {
  std::string file = "thresholds.txt";
  bool history = false;
  int rollback = -1;
  FlagSet flags;
  flags.value("--file", &file, "threshold epoch store (default thresholds.txt)");
  flags.flag("--history", &history, "list every committed epoch");
  flags.value("--rollback", &rollback, "make this epoch active again (-1 = no-op)");
  if (const Status st = flags.parse(argc, argv); !st.ok()) return flag_error(flags, st);

  ThresholdStore store(file);
  if (rollback >= 0) {
    if (const Status st = store.rollback(static_cast<std::uint64_t>(rollback)); !st.ok()) {
      std::fprintf(stderr, "rollback failed: %s\n", st.error().to_string().c_str());
      return 1;
    }
    std::printf("rolled back: epoch %d is active again\n", rollback);
  }

  const Result<ThresholdEpoch> active = store.active();
  if (!active.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", file.c_str(),
                 active.error().to_string().c_str());
    return 1;
  }

  const auto print_epoch = [&](const ThresholdEpoch& e, bool is_active) {
    std::printf("  epoch %-4llu %s parent=%lld source=%s runs=%llu percentile=%.2f margin=%.2f\n",
                static_cast<unsigned long long>(e.id), is_active ? "[active]" : "        ",
                static_cast<long long>(e.parent), e.provenance.source.c_str(),
                static_cast<unsigned long long>(e.provenance.runs), e.provenance.percentile,
                e.provenance.margin);
  };

  if (history) {
    const auto epochs = store.history();
    if (!epochs.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", file.c_str(),
                   epochs.error().to_string().c_str());
      return 1;
    }
    std::printf("%s: %zu epochs\n", file.c_str(), epochs.value().size());
    for (const ThresholdEpoch& e : epochs.value()) print_epoch(e, e.id == active.value().id);
  } else {
    std::printf("%s:\n", file.c_str());
    print_epoch(active.value(), true);
  }
  const DetectionThresholds& th = active.value().thresholds;
  std::printf("  motor vel  %.3f %.3f %.3f rad/s\n", th.motor_vel[0], th.motor_vel[1],
              th.motor_vel[2]);
  std::printf("  motor acc  %.0f %.0f %.0f rad/s^2\n", th.motor_acc[0], th.motor_acc[1],
              th.motor_acc[2]);
  std::printf("  joint vel  %.4f %.4f %.5f rad/s|m/s\n", th.joint_vel[0], th.joint_vel[1],
              th.joint_vel[2]);
  return 0;
}

int cmd_analyze(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::string out = "analysis";
  FlagSet flags;
  flags.value("--seed", &seed, "session seed (default 42)");
  flags.value("--out", &out, "output prefix for the Byte-0 plot");
  if (const Status st = flags.parse(argc, argv); !st.ok()) return flag_error(flags, st);

  auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
  SessionParams p;
  p.seed = seed;
  p.duration_sec = 6.0;
  SimConfig cfg = make_session(p, std::nullopt, MitigationMode::kObserveOnly);
  cfg.pedal = PedalSchedule{{{1.2, 3.0}, {3.4, 20.0}}};
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(logger);
  sim.run(p.duration_sec);

  PacketAnalyzer analyzer(logger->capture());
  const auto inference = analyzer.infer_state();
  if (!inference.ok()) {
    std::fprintf(stderr, "inference failed: %s\n", inference.error().to_string().c_str());
    return 1;
  }
  const StateInference& inf = inference.value();
  std::printf("capture: %zu packets\n", analyzer.packet_count());
  std::printf("state byte index : %zu\n", inf.state_byte_index);
  std::printf("watchdog mask    : 0x%02X\n", inf.watchdog_mask);
  std::printf("pedal-down code  : 0x%02X\n", inf.pedal_down_code);
  std::printf("timeline segments: %zu\n", inf.timeline.size());

  const std::string svg_path = out + "_byte0.svg";
  std::ofstream os(svg_path);
  state_byte_chart(logger->capture(), inf.state_byte_index, inf.watchdog_mask).render(os);
  std::printf("plot written to %s\n", svg_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rg

int main(int argc, char** argv) {
  if (argc < 2) {
    rg::usage();
    return 1;
  }
  const std::string command = argv[1];
  try {
    if (command == "learn") return rg::cmd_learn(argc, argv);
    if (command == "run") return rg::cmd_run(argc, argv);
    if (command == "sweep") return rg::cmd_sweep(argc, argv);
    if (command == "analyze") return rg::cmd_analyze(argc, argv);
    if (command == "thresholds") return rg::cmd_thresholds(argc, argv);
  } catch (const rg::CampaignError& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  rg::usage();
  return 1;
}
