// raven_guard_cli — command-line driver for the simulator, the attack
// engine, and the detection framework.
//
//   raven_guard_cli learn   [--runs N] [--seed S] [--out FILE]
//   raven_guard_cli run     [--seed S] [--duration SEC]
//                           [--trajectory random|circle|suture|FILE.csv]
//                           [--attack none|torque|user-input|hijack|drop|
//                                     math|encoder|state-spoof]
//                           [--magnitude V] [--attack-duration MS]
//                           [--attack-delay MS]
//                           [--thresholds FILE] [--mitigate]
//                           [--trace FILE.csv] [--plots PREFIX]
//   raven_guard_cli analyze [--seed S] [--out PREFIX]
//
// `learn` produces a thresholds file; `run` executes one session and
// reports the outcome (exit code 2 if an adverse impact occurred);
// `analyze` replays the attacker's offline analysis on a fresh capture.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "attack/logging_wrapper.hpp"
#include "attack/packet_analyzer.hpp"
#include "sim/experiment.hpp"
#include "sim/surgical_sim.hpp"
#include "trajectory/recorded.hpp"
#include "viz/trace_plots.hpp"

namespace rg {
namespace {

struct Args {
  std::string command;
  std::uint64_t seed = 42;
  double duration = 6.0;
  std::string trajectory = "random";
  std::string attack = "none";
  double magnitude = 20000.0;
  std::uint32_t attack_duration_ms = 64;
  std::uint32_t attack_delay_ms = 400;
  std::string thresholds_file;
  bool mitigate = false;
  std::string trace_file;
  std::string plots_prefix;
  std::string out = "thresholds.txt";
  int learn_runs = 100;
};

void usage() {
  std::fprintf(stderr,
               "usage: raven_guard_cli <learn|run|analyze> [options]\n"
               "  learn:   --runs N --seed S --out FILE\n"
               "  run:     --seed S --duration SEC --trajectory random|circle|suture|FILE.csv\n"
               "           --attack none|torque|user-input|hijack|drop|math|encoder|state-spoof\n"
               "           --magnitude V --attack-duration MS --attack-delay MS\n"
               "           --thresholds FILE --mitigate --trace FILE.csv --plots PREFIX\n"
               "  analyze: --seed S --out PREFIX\n");
}

bool parse(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--mitigate") {
      args.mitigate = true;
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--duration" && (v = next())) {
      args.duration = std::atof(v);
    } else if (flag == "--trajectory" && (v = next())) {
      args.trajectory = v;
    } else if (flag == "--attack" && (v = next())) {
      args.attack = v;
    } else if (flag == "--magnitude" && (v = next())) {
      args.magnitude = std::atof(v);
    } else if (flag == "--attack-duration" && (v = next())) {
      args.attack_duration_ms = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--attack-delay" && (v = next())) {
      args.attack_delay_ms = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--thresholds" && (v = next())) {
      args.thresholds_file = v;
    } else if (flag == "--trace" && (v = next())) {
      args.trace_file = v;
    } else if (flag == "--plots" && (v = next())) {
      args.plots_prefix = v;
    } else if (flag == "--out" && (v = next())) {
      args.out = v;
    } else if (flag == "--runs" && (v = next())) {
      args.learn_runs = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown or incomplete option: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::shared_ptr<const Trajectory> build_trajectory(const Args& args) {
  if (args.trajectory == "random") {
    Pcg32 rng(args.seed * 0x9e3779b97f4a7c15ULL + 0x1234);
    auto base = std::make_shared<WaypointTrajectory>(
        make_random_trajectory(rng, WorkspaceBox{}, 6, 0.02));
    return std::make_shared<TremorDecorator>(base, args.seed ^ 0xABCDEF);
  }
  if (args.trajectory == "circle") {
    return std::make_shared<CircleTrajectory>(Position{0.09, 0.0, -0.11}, 0.012, 2.5, 3.0);
  }
  if (args.trajectory == "suture") {
    return std::make_shared<SutureTrajectory>(Position{0.085, -0.03, -0.105},
                                              Vec3{0.0, 1.0, 0.0}, 4);
  }
  // Anything else: a recorded-trajectory CSV path.
  std::ifstream is(args.trajectory);
  if (!is) {
    std::fprintf(stderr, "cannot open trajectory file %s\n", args.trajectory.c_str());
    return nullptr;
  }
  auto loaded = RecordedTrajectory::from_csv(is);
  if (!loaded.ok()) {
    std::fprintf(stderr, "bad trajectory CSV: %s\n", loaded.error().to_string().c_str());
    return nullptr;
  }
  return std::make_shared<RecordedTrajectory>(std::move(loaded).value());
}

AttackVariant parse_attack(const std::string& name) {
  if (name == "torque") return AttackVariant::kTorqueInjection;
  if (name == "user-input") return AttackVariant::kUserInputInjection;
  if (name == "hijack") return AttackVariant::kTrajectoryHijack;
  if (name == "drop") return AttackVariant::kConsoleDrop;
  if (name == "math") return AttackVariant::kMathDrift;
  if (name == "encoder") return AttackVariant::kEncoderCorruption;
  if (name == "state-spoof") return AttackVariant::kStateSpoof;
  return AttackVariant::kNone;
}

int cmd_learn(const Args& args) {
  SessionParams p;
  p.seed = args.seed;
  std::printf("learning thresholds from %d fault-free runs...\n", args.learn_runs);
  const DetectionThresholds th = learn_thresholds(p, args.learn_runs);
  save_thresholds(th, args.out);
  std::printf("thresholds written to %s\n", args.out.c_str());
  std::printf("  motor vel  %.3f %.3f %.3f rad/s\n", th.motor_vel[0], th.motor_vel[1],
              th.motor_vel[2]);
  std::printf("  motor acc  %.0f %.0f %.0f rad/s^2\n", th.motor_acc[0], th.motor_acc[1],
              th.motor_acc[2]);
  std::printf("  joint vel  %.4f %.4f %.5f rad/s|m/s\n", th.joint_vel[0], th.joint_vel[1],
              th.joint_vel[2]);
  return 0;
}

int cmd_run(const Args& args) {
  auto trajectory = build_trajectory(args);
  if (!trajectory) return 1;

  std::optional<DetectionThresholds> thresholds;
  if (!args.thresholds_file.empty()) {
    thresholds = load_thresholds(args.thresholds_file);
    if (!thresholds) {
      std::fprintf(stderr, "cannot read thresholds from %s\n", args.thresholds_file.c_str());
      return 1;
    }
  }

  SessionParams p;
  p.seed = args.seed;
  p.duration_sec = args.duration;
  SimConfig cfg = make_session(p, thresholds, args.mitigate);
  cfg.trajectory = trajectory;

  SurgicalSim sim(std::move(cfg));
  TraceRecorder trace;
  if (!args.trace_file.empty() || !args.plots_prefix.empty()) sim.set_trace(&trace);

  AttackSpec spec;
  spec.variant = parse_attack(args.attack);
  spec.magnitude = args.magnitude;
  spec.duration_packets = args.attack_duration_ms;
  spec.delay_packets = args.attack_delay_ms;
  spec.seed = args.seed * 131 + 17;
  const AttackArtifacts artifacts = build_attack(spec);
  sim.install(artifacts);

  sim.run(args.duration);

  const RunOutcome& out = sim.outcome();
  std::printf("session: seed=%llu trajectory=%s attack=%s\n",
              static_cast<unsigned long long>(args.seed), args.trajectory.c_str(),
              args.attack.c_str());
  std::printf("  final state        : %s\n", to_string(sim.control().state()).data());
  std::printf("  injections         : %llu\n",
              static_cast<unsigned long long>(artifacts.injections()));
  std::printf("  max abrupt jump    : %.3f mm\n", 1000.0 * out.max_ee_jump_window);
  std::printf("  adverse impact     : %s\n", out.adverse_impact() ? "YES" : "no");
  std::printf("  cables snapped     : %s\n", out.cable_snapped ? "YES" : "no");
  std::printf("  RAVEN checks fired : %s\n", out.raven_detected() ? "yes" : "no");
  if (thresholds) {
    std::printf("  detector alarm     : %s%s\n", out.detector_alarmed() ? "yes" : "no",
                out.detector_alarmed() && out.detected_preemptively() ? " (preemptive)" : "");
  }

  if (!args.trace_file.empty()) {
    std::ofstream os(args.trace_file);
    trace.write_csv(os);
    std::printf("  trace              : %s\n", args.trace_file.c_str());
  }
  if (!args.plots_prefix.empty()) {
    {
      std::ofstream os(args.plots_prefix + "_joints.svg");
      joint_position_chart(trace).render(os);
    }
    {
      std::ofstream os(args.plots_prefix + "_tool.svg");
      end_effector_chart(trace).render(os);
    }
    std::printf("  plots              : %s_joints.svg, %s_tool.svg\n",
                args.plots_prefix.c_str(), args.plots_prefix.c_str());
  }
  if (spec.variant == AttackVariant::kMathDrift) reset_math_drift();
  return out.adverse_impact() ? 2 : 0;
}

int cmd_analyze(const Args& args) {
  auto logger = std::make_shared<LoggingWrapper>("r2_control", 11, "r2_control", 11);
  SessionParams p;
  p.seed = args.seed;
  p.duration_sec = 6.0;
  SimConfig cfg = make_session(p, std::nullopt, false);
  cfg.pedal = PedalSchedule{{{1.2, 3.0}, {3.4, 20.0}}};
  SurgicalSim sim(std::move(cfg));
  sim.write_chain().add(logger);
  sim.run(p.duration_sec);

  PacketAnalyzer analyzer(logger->capture());
  const auto inference = analyzer.infer_state();
  if (!inference.ok()) {
    std::fprintf(stderr, "inference failed: %s\n", inference.error().to_string().c_str());
    return 1;
  }
  const StateInference& inf = inference.value();
  std::printf("capture: %zu packets\n", analyzer.packet_count());
  std::printf("state byte index : %zu\n", inf.state_byte_index);
  std::printf("watchdog mask    : 0x%02X\n", inf.watchdog_mask);
  std::printf("pedal-down code  : 0x%02X\n", inf.pedal_down_code);
  std::printf("timeline segments: %zu\n", inf.timeline.size());

  const std::string svg_path = args.out + "_byte0.svg";
  std::ofstream os(svg_path);
  state_byte_chart(logger->capture(), inf.state_byte_index, inf.watchdog_mask).render(os);
  std::printf("plot written to %s\n", svg_path.c_str());
  return 0;
}

}  // namespace
}  // namespace rg

int main(int argc, char** argv) {
  rg::Args args;
  if (!rg::parse(argc, argv, args)) {
    rg::usage();
    return 1;
  }
  if (args.command == "learn") return rg::cmd_learn(args);
  if (args.command == "run") return rg::cmd_run(args);
  if (args.command == "analyze") return rg::cmd_analyze(args);
  rg::usage();
  return 1;
}
