// raven_top: live fleet view of a running raven_gateway.
//
// Polls the gateway's admin endpoint (/stats + /metrics.json), computes
// rates from SnapshotDelta between polls, and renders a refreshing
// summary plus a per-session table:
//
//   raven_top --port 9100                 # refresh every second
//   raven_top --port 9100 --once --plain  # one frame, no ANSI (CI)
//
// Exit status is nonzero when the endpoint is unreachable or answers
// with something that does not parse — the property tier1.sh stage 9
// leans on.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "obs/exposition.hpp"
#include "svc/admin.hpp"

namespace {

using rg::json::Value;

struct SessionRow {
  std::uint64_t id = 0;
  std::string endpoint;
  bool active = false;
  bool estop = false;
  std::uint64_t accepted = 0;
  std::uint64_t ticks = 0;
  std::uint64_t alarms = 0;
  std::uint64_t blocked = 0;
};

struct StatsFrame {
  bool captured = false;
  std::uint64_t seq = 0;
  std::uint64_t active_sessions = 0;
  std::uint64_t estop_sessions = 0;
  std::uint64_t drift_alarms = 0;
  std::vector<SessionRow> sessions;
};

rg::Result<StatsFrame> parse_stats(const std::string& body) {
  const rg::Result<Value> parsed = rg::json::parse(body);
  if (!parsed.ok()) return parsed.error();
  const Value& doc = parsed.value();
  const Value* schema = doc.find("schema");
  if (schema == nullptr || schema->as_string() != "rg.admin.stats/1") {
    return rg::Error(rg::ErrorCode::kMalformedPacket, "unexpected /stats schema");
  }
  StatsFrame frame;
  if (const Value* v = doc.find("captured")) frame.captured = v->as_bool();
  if (const Value* v = doc.find("seq")) frame.seq = v->as_u64();
  if (const Value* v = doc.find("estop_sessions")) frame.estop_sessions = v->as_u64();
  if (const Value* gw = doc.find("gateway")) {
    if (const Value* v = gw->find("active_sessions")) frame.active_sessions = v->as_u64();
    if (const Value* v = gw->find("drift_alarms")) frame.drift_alarms = v->as_u64();
  }
  if (const Value* sessions = doc.find("sessions")) {
    for (const Value& entry : sessions->as_array()) {
      SessionRow row;
      if (const Value* v = entry.find("id")) row.id = v->as_u64();
      if (const Value* v = entry.find("endpoint")) row.endpoint = v->as_string();
      if (const Value* v = entry.find("active")) row.active = v->as_bool();
      if (const Value* v = entry.find("estop")) row.estop = v->as_bool();
      if (const Value* v = entry.find("ticks")) row.ticks = v->as_u64();
      if (const Value* v = entry.find("alarms")) row.alarms = v->as_u64();
      if (const Value* v = entry.find("blocked")) row.blocked = v->as_u64();
      if (const Value* ingest = entry.find("ingest")) {
        if (const Value* v = ingest->find("accepted")) row.accepted = v->as_u64();
      }
      frame.sessions.push_back(std::move(row));
    }
  }
  return frame;
}

/// Human-scaled nanoseconds ("850ns", "1.2us", "3.4ms").
std::string format_ns(double ns) {
  char buf[32];
  if (ns < 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  }
  return buf;
}

void render(const StatsFrame& stats, const rg::obs::LiveSnapshot& live,
            const std::optional<rg::obs::SnapshotDelta>& delta,
            const std::map<std::uint64_t, SessionRow>& prev_sessions, double dt_sec,
            const std::string& host, std::uint16_t port, bool plain) {
  if (!plain) std::fputs("\x1b[2J\x1b[H", stdout);

  std::printf("raven_top — %s:%u  seq=%llu  sessions=%llu active", host.c_str(), port,
              static_cast<unsigned long long>(stats.seq),
              static_cast<unsigned long long>(stats.active_sessions));
  if (stats.estop_sessions != 0) {
    std::printf("  [E-STOP x%llu]", static_cast<unsigned long long>(stats.estop_sessions));
  }
  std::printf("\n");

  const auto total = [&](std::string_view name) -> std::uint64_t {
    const auto* c = live.metrics.counter(name);
    return c != nullptr ? c->value : 0;
  };
  if (delta.has_value()) {
    std::printf("rx %.1f/s  accept %.1f/s  ", delta->rate_per_sec("rg.gw.rx_packets"),
                delta->rate_per_sec("rg.gw.accepted"));
  } else {
    std::printf("rx %llu  accept %llu  ",
                static_cast<unsigned long long>(total("rg.gw.rx_packets")),
                static_cast<unsigned long long>(total("rg.gw.accepted")));
  }
  const rg::obs::HistogramData* jitter =
      delta.has_value() ? delta->histogram("rg.gw.pump.jitter_ns") : nullptr;
  if (jitter == nullptr || jitter->empty()) {
    if (const auto* h = live.metrics.histogram("rg.gw.pump.jitter_ns")) jitter = h;
  }
  if (jitter != nullptr && !jitter->empty()) {
    std::printf("pump jitter p50 %s p99 %s  ",
                format_ns(jitter->quantile(50.0).value).c_str(),
                format_ns(jitter->quantile(99.0).value).c_str());
  }
  // Syscall amortization: datagrams per transport poll_batch() call.
  const rg::obs::HistogramData* rx_batch =
      delta.has_value() ? delta->histogram("rg.gw.rx_batch_size") : nullptr;
  if (rx_batch == nullptr || rx_batch->empty()) {
    if (const auto* h = live.metrics.histogram("rg.gw.rx_batch_size")) rx_batch = h;
  }
  if (rx_batch != nullptr && !rx_batch->empty()) {
    std::printf("rx batch p50 %.0f p99 %.0f  ", rx_batch->quantile(50.0).value,
                rx_batch->quantile(99.0).value);
  }
  std::printf("deadline_miss %llu  drift_alarms %llu\n",
              static_cast<unsigned long long>(total("rg.gw.pump.deadline_miss")),
              static_cast<unsigned long long>(stats.drift_alarms));

  // Per-shard ring health: queue high watermarks (gauges
  // rg.gw.shard.<i>.queue_hwm) + ring-full backpressure drops (counters
  // rg.gw.shard.<i>.ring_full).
  bool any_hwm = false;
  for (const auto& g : live.metrics.gauges) {
    const std::string_view name = g.name;
    if (name.rfind("rg.gw.shard.", 0) != 0 || name.size() < 10 ||
        name.substr(name.size() - 10) != ".queue_hwm") {
      continue;
    }
    if (!any_hwm) std::printf("queue hwm:");
    any_hwm = true;
    const std::string_view index = name.substr(12, name.size() - 12 - 10);
    std::printf(" %.*s=%.0f", static_cast<int>(index.size()), index.data(), g.value);
  }
  if (any_hwm) std::printf("\n");
  bool any_ring_full = false;
  for (const auto& c : live.metrics.counters) {
    const std::string_view name = c.name;
    if (name.rfind("rg.gw.shard.", 0) != 0 || name.size() < 10 ||
        name.substr(name.size() - 10) != ".ring_full") {
      continue;
    }
    if (c.value == 0) continue;  // quiet shards stay off the screen
    if (!any_ring_full) std::printf("ring full:");
    any_ring_full = true;
    const std::string_view index = name.substr(12, name.size() - 12 - 10);
    std::printf(" %.*s=%llu", static_cast<int>(index.size()), index.data(),
                static_cast<unsigned long long>(c.value));
  }
  if (any_ring_full) std::printf("\n");

  std::printf("\n%6s  %-21s %-7s %10s %10s %8s %8s %6s\n", "ID", "ENDPOINT", "STATE", "ACC/s",
              "TICK/s", "ALARMS", "BLOCKED", "ESTOP");
  for (const SessionRow& row : stats.sessions) {
    double acc_rate = 0.0;
    double tick_rate = 0.0;
    const auto it = prev_sessions.find(row.id);
    if (it != prev_sessions.end() && dt_sec > 0.0) {
      const SessionRow& prev = it->second;
      acc_rate = row.accepted >= prev.accepted
                     ? static_cast<double>(row.accepted - prev.accepted) / dt_sec
                     : 0.0;
      tick_rate =
          row.ticks >= prev.ticks ? static_cast<double>(row.ticks - prev.ticks) / dt_sec : 0.0;
    } else {
      // First frame (or --once): no baseline, show lifetime totals as-is.
      acc_rate = static_cast<double>(row.accepted);
      tick_rate = static_cast<double>(row.ticks);
    }
    std::printf("%6llu  %-21s %-7s %10.1f %10.1f %8llu %8llu %6s\n",
                static_cast<unsigned long long>(row.id), row.endpoint.c_str(),
                row.active ? "active" : "closed", acc_rate, tick_rate,
                static_cast<unsigned long long>(row.alarms),
                static_cast<unsigned long long>(row.blocked), row.estop ? "YES" : "-");
  }
  if (stats.sessions.empty()) std::printf("(no sessions yet)\n");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rg;

  std::string host = "127.0.0.1";
  std::uint32_t port = 0;
  double interval = 1.0;
  bool once = false;
  bool plain = false;
  std::uint32_t count = 0;

  FlagSet flags;
  flags.value("--host", &host, "admin endpoint host (default 127.0.0.1)");
  flags.value("--port", &port, "admin endpoint port (required)");
  flags.value("--interval", &interval, "poll period in seconds (default 1.0)");
  flags.flag("--once", &once, "render one frame and exit");
  flags.flag("--plain", &plain, "no ANSI clear between frames (CI/log friendly)");
  flags.value("--count", &count, "exit after this many frames (0 = until SIGINT)");
  if (const Status st = flags.parse(argc, argv, 1); !st.ok()) {
    std::fprintf(stderr, "%s\n\nusage: raven_top --port <admin port> [options]\n%s",
                 st.error().to_string().c_str(), flags.help().c_str());
    return 1;
  }
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "raven_top: --port is required (the gateway's --admin-port)\n");
    return 1;
  }
  if (once) count = 1;

  std::optional<obs::LiveSnapshot> prev_live;
  std::map<std::uint64_t, SessionRow> prev_sessions;
  auto prev_wall = std::chrono::steady_clock::now();

  for (std::uint32_t frame = 0; count == 0 || frame < count; ++frame) {
    if (frame != 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }

    const auto port16 = static_cast<std::uint16_t>(port);
    const Result<svc::HttpResponse> stats_rsp = svc::http_get(host, port16, "/stats");
    if (!stats_rsp.ok() || stats_rsp.value().status != 200) {
      std::fprintf(stderr, "raven_top: GET /stats failed: %s\n",
                   stats_rsp.ok() ? ("HTTP " + std::to_string(stats_rsp.value().status)).c_str()
                                  : stats_rsp.error().to_string().c_str());
      return 1;
    }
    const Result<svc::HttpResponse> metrics_rsp = svc::http_get(host, port16, "/metrics.json");
    if (!metrics_rsp.ok() || metrics_rsp.value().status != 200) {
      std::fprintf(stderr, "raven_top: GET /metrics.json failed: %s\n",
                   metrics_rsp.ok()
                       ? ("HTTP " + std::to_string(metrics_rsp.value().status)).c_str()
                       : metrics_rsp.error().to_string().c_str());
      return 1;
    }

    const Result<StatsFrame> stats = parse_stats(stats_rsp.value().body);
    if (!stats.ok()) {
      std::fprintf(stderr, "raven_top: /stats did not parse: %s\n",
                   stats.error().to_string().c_str());
      return 1;
    }
    Result<obs::LiveSnapshot> live = obs::parse_live_json(metrics_rsp.value().body);
    if (!live.ok()) {
      std::fprintf(stderr, "raven_top: /metrics.json did not parse: %s\n",
                   live.error().to_string().c_str());
      return 1;
    }

    const auto now_wall = std::chrono::steady_clock::now();
    const double dt_sec = std::chrono::duration<double>(now_wall - prev_wall).count();
    std::optional<obs::SnapshotDelta> delta;
    if (prev_live.has_value()) {
      const std::uint64_t interval_ns =
          live.value().captured_ns > prev_live->captured_ns
              ? live.value().captured_ns - prev_live->captured_ns
              : 0;
      delta = obs::SnapshotDelta::between(prev_live->metrics, live.value().metrics, interval_ns);
    }

    render(stats.value(), live.value(), delta, prev_sessions, dt_sec, host, port16, plain);

    prev_sessions.clear();
    for (const SessionRow& row : stats.value().sessions) prev_sessions[row.id] = row;
    prev_live = std::move(live.value());
    prev_wall = now_wall;
  }
  return 0;
}
