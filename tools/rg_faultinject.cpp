// rg_faultinject: deterministic fault-injection driver for the
// crash-consistent state plane (docs/persistence.md).
//
// Three subcommands compose into scripts/fault_matrix.sh's seeded
// crash/corruption matrix:
//
//   generate --dir D --seed S --ops N [--kill-at K] [--flush-every F]
//       Drive a StatePlane (flusher off — every durability point is an
//       explicit flush) with a SplitMix64-derived op stream: session
//       opens/closes, window advances, E-STOP latches, epoch and sketch
//       notes.  With --kill-at K the process dies via _exit(137) right
//       after submitting op K — no flush, no destructors — simulating a
//       SIGKILL at an arbitrary instruction boundary.  On completion
//       prints rg.faultinject/1 JSON with the final state digest.
//
//   corrupt --file F --mode truncate|bitflip|zeropage|duptail --offset O
//       Damage one artifact byte-precisely: truncate to O, flip bit
//       (O mod 8) of byte O, zero the 4 KiB page containing O, or append
//       a duplicate of the file's last --len bytes (default 64).
//
//   verify --dir D
//       Run recovery exactly as a restarting gateway would and print
//       rg.faultinject.verify/1 JSON: outcome, reason, restored digest,
//       and the full durable-prefix digest set.  The harness asserts
//       every corrupted cell either restores to a digest in the
//       *baseline's* prefix set or reports fail_safe — never a silently
//       corrupt load.
//
// Everything is seeded: same seed + same kill/corruption point = same
// bytes, same digests, same verdict.

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/flags.hpp"
#include "persist/journal.hpp"
#include "persist/recovery.hpp"
#include "persist/state_plane.hpp"

namespace {

using namespace rg;
using namespace rg::persist;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Local mirror of the synthetic sessions the op stream has opened.
struct ModelSession {
  std::uint32_t id = 0;
  std::uint32_t newest = 0;
  std::uint64_t mask = 0;
  bool started = false;
};

int cmd_generate(const std::string& dir, std::uint64_t seed, std::uint64_t ops,
                 int kill_at, std::uint64_t flush_every) {
  StatePlaneConfig pc;
  pc.dir = dir;
  pc.start_flusher = false;  // durability points are explicit flush_now() calls
  pc.snapshot_wal_bytes = 32 * 1024;  // small: the matrix exercises rotation too
  auto opened = StatePlane::open(pc);
  if (!opened.ok()) {
    std::fprintf(stderr, "rg_faultinject: cannot open %s: %s\n", dir.c_str(),
                 opened.error().to_string().c_str());
    return 1;
  }
  StatePlane& plane = *opened.value();
  if (plane.fail_safe()) {
    std::fprintf(stderr, "rg_faultinject: %s recovered fail-safe (%s); refusing to generate\n",
                 dir.c_str(), plane.recovery().reason.c_str());
    return 1;
  }

  std::uint64_t rng = seed;
  std::vector<ModelSession> open_sessions;
  std::uint32_t next_id = std::max<std::uint32_t>(1, plane.state().next_session_id);
  std::uint64_t epoch_counter = 0;

  for (std::uint64_t i = 0; i < ops; ++i) {
    const std::uint64_t r = splitmix64(rng);
    const std::uint64_t pick = r % 100;
    StateOp op;
    if (pick < 8 || open_sessions.empty()) {
      ModelSession s;
      s.id = next_id++;
      op.kind = StateOp::Kind::kOpen;
      op.session = s.id;
      op.ip = 0x7f000001;
      op.port = static_cast<std::uint16_t>(40000 + (s.id & 0x3fff));
      open_sessions.push_back(s);
    } else if (pick < 12) {
      const std::size_t victim = static_cast<std::size_t>(r >> 8) % open_sessions.size();
      op.kind = StateOp::Kind::kClose;
      op.session = open_sessions[victim].id;
      open_sessions.erase(open_sessions.begin() + static_cast<std::ptrdiff_t>(victim));
    } else if (pick < 14) {
      const std::size_t victim = static_cast<std::size_t>(r >> 8) % open_sessions.size();
      op.kind = StateOp::Kind::kEstop;
      op.session = open_sessions[victim].id;
      op.flag = 1;
    } else if (pick < 16) {
      op.kind = StateOp::Kind::kEpoch;
      op.a = ++epoch_counter;
      op.b = splitmix64(rng);
    } else if (pick < 18) {
      op.kind = StateOp::Kind::kSketch;
      op.a = splitmix64(rng);
      op.b = i;
    } else {
      ModelSession& s = open_sessions[static_cast<std::size_t>(r >> 8) % open_sessions.size()];
      const std::uint32_t advance = 1 + static_cast<std::uint32_t>((r >> 40) % 3);
      s.newest = s.started ? s.newest + advance : 1;
      s.mask = s.started ? ((advance >= 64 ? 0 : s.mask << advance) | 1) : 1;
      s.started = true;
      op.kind = StateOp::Kind::kWindow;
      op.session = s.id;
      op.newest = s.newest;
      op.mask = s.mask;
      op.flag = 1;
    }
    if (!plane.submit(op)) {
      std::fprintf(stderr, "rg_faultinject: op %" PRIu64 " dropped (ring full?)\n", i);
      return 1;
    }
    if (kill_at >= 0 && i == static_cast<std::uint64_t>(kill_at)) {
      // SIGKILL semantics: no flush, no flusher, no destructors.  The
      // artifacts hold exactly what the last explicit flush made durable.
      ::_exit(137);
    }
    if (flush_every != 0 && (i + 1) % flush_every == 0) plane.flush_now();
  }
  plane.stop();  // final flush

  std::printf("{\"schema\": \"rg.faultinject/1\", \"seed\": %" PRIu64 ", \"ops\": %" PRIu64
              ", \"final_digest\": \"%016" PRIx64 "\", \"wal_records\": %" PRIu64
              ", \"snapshots\": %" PRIu64 "}\n",
              seed, ops, plane.state_digest(), plane.stats().store.wal_records,
              plane.stats().store.snapshots);
  return 0;
}

int cmd_corrupt(const std::string& file, const std::string& mode, std::uint64_t offset,
                std::uint64_t len) {
  const int fd = ::open(file.c_str(), O_RDWR);
  if (fd < 0) {
    std::fprintf(stderr, "rg_faultinject: cannot open %s: %s\n", file.c_str(),
                 std::strerror(errno));
    return 1;
  }
  const auto size = static_cast<std::uint64_t>(::lseek(fd, 0, SEEK_END));
  int rc = 0;
  if (mode == "truncate") {
    if (::ftruncate(fd, static_cast<off_t>(std::min(offset, size))) != 0) rc = 1;
  } else if (mode == "bitflip") {
    if (offset >= size) {
      std::fprintf(stderr, "rg_faultinject: offset %" PRIu64 " beyond %s (%" PRIu64 " bytes)\n",
                   offset, file.c_str(), size);
      rc = 1;
    } else {
      std::uint8_t byte = 0;
      if (::pread(fd, &byte, 1, static_cast<off_t>(offset)) != 1) rc = 1;
      byte ^= static_cast<std::uint8_t>(1u << (offset % 8));
      if (rc == 0 && ::pwrite(fd, &byte, 1, static_cast<off_t>(offset)) != 1) rc = 1;
    }
  } else if (mode == "zeropage") {
    const std::uint64_t page = offset & ~0xfffULL;
    if (page >= size) {
      std::fprintf(stderr, "rg_faultinject: page %" PRIu64 " beyond %s\n", page, file.c_str());
      rc = 1;
    } else {
      const std::uint64_t n = std::min<std::uint64_t>(4096, size - page);
      const std::vector<std::uint8_t> zeros(n, 0);
      if (::pwrite(fd, zeros.data(), n, static_cast<off_t>(page)) !=
          static_cast<ssize_t>(n)) {
        rc = 1;
      }
    }
  } else if (mode == "duptail") {
    const std::uint64_t n = std::min<std::uint64_t>(len == 0 ? 64 : len, size);
    std::vector<std::uint8_t> tail(n);
    if (n != 0 && ::pread(fd, tail.data(), n, static_cast<off_t>(size - n)) !=
                      static_cast<ssize_t>(n)) {
      rc = 1;
    }
    if (rc == 0 && n != 0 &&
        ::pwrite(fd, tail.data(), n, static_cast<off_t>(size)) != static_cast<ssize_t>(n)) {
      rc = 1;
    }
  } else {
    std::fprintf(stderr, "rg_faultinject: unknown mode '%s'\n", mode.c_str());
    rc = 1;
  }
  if (rc != 0 && errno != 0) {
    std::fprintf(stderr, "rg_faultinject: corrupt %s failed: %s\n", file.c_str(),
                 std::strerror(errno));
  }
  ::close(fd);
  return rc;
}

int cmd_verify(const std::string& dir) {
  RecoverOptions options;
  options.collect_prefix_digests = true;
  const RecoveryResult rec = recover_state(dir, options);

  // Journal health rides along (corruption there is observational for
  // the store but flips the *plane* fail-safe on foreign magic).
  std::uint64_t journal_records = 0;
  std::string journal_tail = "absent";
  const auto journal_scan = Journal::scan_file(
      dir + "/journal.rgjrnl", [&journal_records](const RecordView&) { ++journal_records; });
  if (journal_scan.ok()) journal_tail = to_string(journal_scan.value().tail);

  std::printf("{\"schema\": \"rg.faultinject.verify/1\", \"outcome\": \"%s\", \"reason\": \"%s\""
              ", \"digest\": \"%016" PRIx64 "\", \"last_lsn\": %" PRIu64
              ", \"snapshot_loaded\": %s, \"wal_records_applied\": %" PRIu64
              ", \"wal_records_skipped\": %" PRIu64 ", \"wal_tail\": \"%s\""
              ", \"sessions\": %zu, \"journal_records\": %" PRIu64 ", \"journal_tail\": \"%s\""
              ", \"prefix_digests\": [",
              std::string(to_string(rec.outcome)).c_str(), rec.reason.c_str(), rec.digest,
              rec.last_lsn, rec.snapshot_loaded ? "true" : "false", rec.wal_records_applied,
              rec.wal_records_skipped, std::string(to_string(rec.wal_tail)).c_str(),
              rec.state.sessions.size(), journal_records, journal_tail.c_str());
  for (std::size_t i = 0; i < rec.prefix_digests.size(); ++i) {
    std::printf("%s\"%016" PRIx64 "\"", i == 0 ? "" : ", ", rec.prefix_digests[i]);
  }
  std::printf("]}\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: rg_faultinject <generate|corrupt|verify> [options]\n");
    return 1;
  }
  const std::string cmd = argv[1];

  std::string dir;
  std::string file;
  std::string mode;
  std::uint64_t seed = 1;
  std::uint64_t ops = 1000;
  int kill_at = -1;
  std::uint64_t flush_every = 64;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;

  FlagSet flags;
  flags.value("--dir", &dir, "state directory (generate/verify)");
  flags.value("--file", &file, "artifact to damage (corrupt)");
  flags.value("--mode", &mode, "corruption mode: truncate|bitflip|zeropage|duptail");
  flags.value("--seed", &seed, "op-stream seed (generate)");
  flags.value("--ops", &ops, "ops to generate");
  flags.value("--kill-at", &kill_at, "_exit(137) right after this op index (-1 = run out)");
  flags.value("--flush-every", &flush_every, "flush_now() every N ops (0 = only at exit)");
  flags.value("--offset", &offset, "damage offset in bytes");
  flags.value("--len", &len, "damage length (duptail; default 64)");
  if (const Status st = flags.parse(argc, argv, 2); !st.ok()) {
    std::fprintf(stderr, "%s\n\nusage: rg_faultinject <generate|corrupt|verify> [options]\n%s",
                 st.error().to_string().c_str(), flags.help().c_str());
    return 1;
  }

  try {
    if (cmd == "generate") {
      if (dir.empty()) {
        std::fprintf(stderr, "generate requires --dir\n");
        return 1;
      }
      return cmd_generate(dir, seed, ops, kill_at, flush_every);
    }
    if (cmd == "corrupt") {
      if (file.empty() || mode.empty()) {
        std::fprintf(stderr, "corrupt requires --file and --mode\n");
        return 1;
      }
      return cmd_corrupt(file, mode, offset, len);
    }
    if (cmd == "verify") {
      if (dir.empty()) {
        std::fprintf(stderr, "verify requires --dir\n");
        return 1;
      }
      return cmd_verify(dir);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rg_faultinject: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "rg_faultinject: unknown subcommand '%s'\n", cmd.c_str());
  return 1;
}
