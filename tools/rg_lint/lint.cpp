#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace fs = std::filesystem;

namespace rg::lint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer.  Comments and preprocessor directives are consumed (allow
// annotations are harvested from line comments on the way through);
// string/char literals survive as single tokens so metric names stay
// intact and code-looking text inside them is never analyzed.
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNumber, kString, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string rel;  // forward-slash path relative to the scanned root
  std::vector<Token> toks;
  // line -> allow classes granted on that line (a finding on line L is
  // waived by an allow on L or L-1).
  std::map<int, std::set<std::string>> allows;
  // (line, class) waivers that suppressed at least one finding this run;
  // the stale-waiver pass flags the rest.  Mutable: usage is recorded
  // from the otherwise-const check passes.
  mutable std::set<std::pair<int, std::string>> used_allows;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parse `rg-lint: allow(a, b) -- reason` out of one comment's text.
void harvest_allow(const std::string& comment, int line, SourceFile& out) {
  const std::size_t tag = comment.find("rg-lint:");
  if (tag == std::string::npos) return;
  const std::size_t open = comment.find("allow(", tag);
  if (open == std::string::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;
  std::string inner = comment.substr(open + 6, close - open - 6);
  std::string cls;
  auto flush = [&] {
    if (!cls.empty()) out.allows[line].insert(cls);
    cls.clear();
  };
  for (const char c : inner) {
    if (c == ',') {
      flush();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cls.push_back(c);
    }
  }
  flush();
}

SourceFile lex(const std::string& rel, const std::string& text) {
  SourceFile out;
  out.rel = rel;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto newline = [&] { ++line; at_line_start = true; };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the whole logical line (including
    // backslash continuations).  This hides macro *definitions* from
    // every check — RG_SPAN's own body must not register as a call site.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;

    // Comments (and their allow annotations).
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t eol = text.find('\n', i);
      const std::string body =
          text.substr(i, (eol == std::string::npos ? n : eol) - i);
      harvest_allow(body, line, out);
      i = (eol == std::string::npos) ? n : eol;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') newline();
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Raw strings: R"tag( ... )tag".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t p = i + 2;
      std::string tag;
      while (p < n && text[p] != '(') tag.push_back(text[p++]);
      const std::string close = ")" + tag + "\"";
      const std::size_t endpos = text.find(close, p);
      const std::size_t stop = (endpos == std::string::npos) ? n : endpos + close.size();
      const int start_line = line;
      std::string value = text.substr(p + 1, (endpos == std::string::npos ? n : endpos) - p - 1);
      for (std::size_t q = i; q < stop; ++q) {
        if (text[q] == '\n') newline();
      }
      out.toks.push_back({Tok::kString, value, start_line});
      i = stop;
      continue;
    }

    // Ordinary string / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::string value;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          value.push_back(text[i]);
          value.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') newline();  // unterminated; be forgiving
        value.push_back(text[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.toks.push_back({quote == '"' ? Tok::kString : Tok::kNumber, value, line});
      continue;
    }

    if (ident_start(c)) {
      std::string word;
      while (i < n && ident_char(text[i])) word.push_back(text[i++]);
      out.toks.push_back({Tok::kIdent, word, line});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::string num;
      while (i < n &&
             (ident_char(text[i]) || text[i] == '.' || text[i] == '\'' ||
              ((text[i] == '+' || text[i] == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E' || num.back() == 'p' ||
                num.back() == 'P')))) {
        if (text[i] == '\'') {
          ++i;  // digit separator
          continue;
        }
        num.push_back(text[i++]);
      }
      out.toks.push_back({Tok::kNumber, num, line});
      continue;
    }

    // Punctuation.  Only `::` needs to stay fused (namespace-qualification
    // checks); everything else is fine as single characters.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.toks.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    out.toks.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------------------

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is(const Token& t, const char* text) { return t.text == text; }

/// Index of the `)` matching the `(` at `open`, or kNpos.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is(toks[i], "(")) ++depth;
    if (is(toks[i], ")") && --depth == 0) return i;
  }
  return kNpos;
}

/// Index of the `}` matching the `{` at `open`, or kNpos.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (is(toks[i], "{")) ++depth;
    if (is(toks[i], "}") && --depth == 0) return i;
  }
  return kNpos;
}

/// After a parameter list closes at `close`, scan across qualifiers,
/// trailing return types, and constructor init lists for the body `{`.
/// Returns its index, or kNpos when the construct ends in `;` (a
/// declaration) or looks like an expression instead.
std::size_t find_body_brace(const std::vector<Token>& toks, std::size_t close) {
  int depth = 0;
  const std::size_t limit = std::min(toks.size(), close + 512);
  for (std::size_t i = close + 1; i < limit; ++i) {
    const Token& t = toks[i];
    if (is(t, "(") || is(t, "[")) ++depth;
    if (is(t, ")") || is(t, "]")) {
      if (depth == 0) return kNpos;  // enclosing expression, not a signature
      --depth;
      continue;
    }
    if (depth > 0) continue;
    if (is(t, "{")) return i;
    if (is(t, ";") || is(t, "}") || is(t, "?")) return kNpos;
  }
  return kNpos;
}

const std::unordered_set<std::string>& statement_keywords() {
  static const std::unordered_set<std::string> kw = {
      "if",       "for",      "while",   "switch",   "catch",    "return",
      "sizeof",   "alignof",  "alignas", "decltype", "noexcept", "throw",
      "new",      "delete",   "case",    "default",  "operator", "requires",
      "else",     "do",       "using",   "typedef",  "template", "typename",
      "class",    "struct",   "enum",    "union",    "namespace", "co_await",
      "co_yield", "co_return", "static_assert", "static_cast", "const_cast",
      "reinterpret_cast", "dynamic_cast", "assert", "defined",
      "constexpr", "consteval", "constinit", "const", "static", "inline",
      "mutable", "volatile", "explicit", "virtual", "friend",
  };
  return kw;
}

/// Identifiers that collide with ubiquitous STL member names: calling one
/// never triggers annotation propagation (the STL call is
/// indistinguishable from an in-tree one at token level).
const std::unordered_set<std::string>& propagation_allowlist() {
  static const std::unordered_set<std::string> names = {
      "size",       "length",     "begin",     "end",       "cbegin",
      "cend",       "rbegin",     "rend",      "data",      "empty",
      "fill",       "at",         "reset",     "ok",        "value",
      "error",      "value_or",   "has_value", "clear",     "swap",
      "front",      "back",       "count",     "find",      "contains",
      "min",        "max",        "get",       "move",      "forward",
      "first",      "last",       "subspan",   "substr",    "to_string",
      "load",       "store",      "exchange",  "fetch_add", "fetch_sub",
      "time_since_epoch",
  };
  return names;
}

/// Banned identifier -> finding class for RG_REALTIME bodies.
const std::unordered_map<std::string, Check>& banned_idents() {
  static const std::unordered_map<std::string, Check> map = {
      // alloc
      {"malloc", Check::kAlloc},
      {"calloc", Check::kAlloc},
      {"realloc", Check::kAlloc},
      {"aligned_alloc", Check::kAlloc},
      {"free", Check::kAlloc},
      {"strdup", Check::kAlloc},
      {"make_unique", Check::kAlloc},
      {"make_shared", Check::kAlloc},
      // push_back
      {"push_back", Check::kPushBack},
      {"emplace_back", Check::kPushBack},
      // io
      {"printf", Check::kIo},
      {"fprintf", Check::kIo},
      {"sprintf", Check::kIo},
      {"snprintf", Check::kIo},
      {"vprintf", Check::kIo},
      {"puts", Check::kIo},
      {"fputs", Check::kIo},
      {"putchar", Check::kIo},
      {"fopen", Check::kIo},
      {"fclose", Check::kIo},
      {"fread", Check::kIo},
      {"fwrite", Check::kIo},
      {"fflush", Check::kIo},
      {"scanf", Check::kIo},
      {"cout", Check::kIo},
      {"cerr", Check::kIo},
      {"clog", Check::kIo},
      {"endl", Check::kIo},
      // durability syscalls: persistence must ride the flusher thread,
      // never the tick path (docs/persistence.md)
      {"fsync", Check::kIo},
      {"fdatasync", Check::kIo},
      {"msync", Check::kIo},
      {"sync_file_range", Check::kIo},
      {"write", Check::kIo},
      {"pwrite", Check::kIo},
      {"writev", Check::kIo},
      {"pwritev", Check::kIo},
      // lock
      {"mutex", Check::kLock},
      {"timed_mutex", Check::kLock},
      {"recursive_mutex", Check::kLock},
      {"shared_mutex", Check::kLock},
      {"lock_guard", Check::kLock},
      {"unique_lock", Check::kLock},
      {"scoped_lock", Check::kLock},
      {"shared_lock", Check::kLock},
      {"condition_variable", Check::kLock},
      {"lock", Check::kLock},
      {"unlock", Check::kLock},
      {"try_lock", Check::kLock},
      // block
      {"sleep", Check::kBlock},
      {"usleep", Check::kBlock},
      {"nanosleep", Check::kBlock},
      {"sleep_for", Check::kBlock},
      {"sleep_until", Check::kBlock},
      {"wait", Check::kBlock},
      {"wait_for", Check::kBlock},
      {"wait_until", Check::kBlock},
      {"recv", Check::kBlock},
      {"recvfrom", Check::kBlock},
      {"send", Check::kBlock},
      {"sendto", Check::kBlock},
      {"accept", Check::kBlock},
      {"connect", Check::kBlock},
      {"select", Check::kBlock},
      {"poll", Check::kBlock},
      {"epoll_wait", Check::kBlock},
      {"futex", Check::kBlock},
  };
  return map;
}

// ---------------------------------------------------------------------------
// Scan state shared across checks.
// ---------------------------------------------------------------------------

struct RealtimeFn {
  std::size_t file = 0;   // index into files
  std::string name;
  int line = 0;
  std::size_t body_begin = 0;  // first token inside the braces
  std::size_t body_end = 0;    // index of the closing brace
};

struct MetricSite {
  std::string name;  // exact name, or "prefix.*" for dynamic registrations
  std::size_t file = 0;
  int line = 0;
};

struct RoleFn {
  std::size_t file = 0;
  std::string name;
  std::string role;
  int line = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
};

struct Scan {
  std::vector<SourceFile> files;
  std::set<std::string> annotated;  // RG_REALTIME names (decls + defs)
  std::set<std::string> defined;    // names with an in-tree (src/) definition
  std::vector<RealtimeFn> realtime_fns;
  std::vector<MetricSite> metric_sites;
  // RG_THREAD: name -> roles it is pinned to (decls + defs), and the
  // role-annotated definitions whose bodies get checked.
  std::map<std::string, std::set<std::string>> roles;
  std::vector<RoleFn> role_fns;
  // RG_DETERMINISTIC definitions (checked bodies; no propagation).
  std::vector<RealtimeFn> det_fns;
  // Malformed RG_THREAD sites: unparsable role list or a role outside
  // the vocabulary (name/role empty for the former).
  std::vector<RoleFn> thread_role_errors;
};

/// The thread-role vocabulary (src/common/realtime.hpp).
const std::set<std::string> kThreadRoles = {"pump", "shard", "flusher", "admin", "any"};

bool allowed(const SourceFile& f, int line, const char* cls) {
  for (const int l : {line, line - 1}) {
    const auto it = f.allows.find(l);
    if (it != f.allows.end() && it->second.count(cls) != 0) {
      f.used_allows.insert({l, cls});
      return true;
    }
  }
  return false;
}

void add_finding(std::vector<Finding>& out, const SourceFile& f, int line,
                 Check check, std::string message) {
  if (allowed(f, line, to_string(check))) return;
  out.push_back({f.rel, line, check, std::move(message)});
}

// ---------------------------------------------------------------------------
// Pass 1: definitions, annotations, metric sites.
// ---------------------------------------------------------------------------

/// From an RG_REALTIME token, locate the annotated function's name (the
/// identifier directly before its parameter-list `(`), skipping over
/// return types and `__attribute__((...))` groups.
struct Signature {
  std::string name;
  std::size_t paren = kNpos;  // index of the parameter-list `(`
};

Signature annotated_signature(const std::vector<Token>& toks, std::size_t rt) {
  const std::size_t limit = std::min(toks.size(), rt + 64);
  for (std::size_t i = rt + 1; i < limit; ++i) {
    if ((is(toks[i], "__attribute__") || is(toks[i], "RG_THREAD")) &&
        i + 1 < toks.size() && is(toks[i + 1], "(")) {
      const std::size_t close = match_paren(toks, i + 1);
      if (close == kNpos) return {};
      i = close;  // loop increment steps past it
      continue;
    }
    if (is(toks[i], ";") || is(toks[i], "{")) return {};
    if (is(toks[i], "(")) {
      if (i == rt + 1) return {};
      const Token& name = toks[i - 1];
      if (name.kind != Tok::kIdent || name.text == "operator" ||
          statement_keywords().count(name.text) != 0) {
        return {};
      }
      return {name.text, i};
    }
  }
  return {};
}

void scan_file(std::size_t file_index, Scan& scan) {
  SourceFile& f = scan.files[file_index];
  const std::vector<Token>& toks = f.toks;
  const bool in_src = f.rel.rfind("src/", 0) == 0;
  const bool metric_scope = in_src || f.rel.rfind("tools/", 0) == 0;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;

    // RG_REALTIME annotations (declarations and definitions).
    if (t.text == "RG_REALTIME") {
      const Signature sig = annotated_signature(toks, i);
      if (sig.paren == kNpos) continue;
      scan.annotated.insert(sig.name);
      const std::size_t close = match_paren(toks, sig.paren);
      if (close == kNpos) continue;
      const std::size_t body = find_body_brace(toks, close);
      if (body == kNpos) continue;  // declaration
      const std::size_t end = match_brace(toks, body);
      if (end == kNpos) continue;
      scan.realtime_fns.push_back(
          {file_index, sig.name, toks[sig.paren - 1].line, body + 1, end});
      continue;
    }

    // RG_THREAD(role) annotations (declarations and definitions).
    if (t.text == "RG_THREAD" && i + 1 < toks.size() && is(toks[i + 1], "(")) {
      const std::size_t role_close = match_paren(toks, i + 1);
      if (role_close != i + 3 || toks[i + 2].kind != Tok::kIdent) {
        scan.thread_role_errors.push_back(
            {file_index, "", "", t.line, 0, 0});
        continue;
      }
      const std::string& role = toks[i + 2].text;
      const Signature sig = annotated_signature(toks, role_close);
      if (sig.paren == kNpos) continue;
      if (kThreadRoles.count(role) == 0) {
        scan.thread_role_errors.push_back(
            {file_index, sig.name, role, toks[i + 2].line, 0, 0});
        continue;
      }
      scan.roles[sig.name].insert(role);
      const std::size_t close = match_paren(toks, sig.paren);
      if (close == kNpos) continue;
      const std::size_t body = find_body_brace(toks, close);
      if (body == kNpos) continue;  // declaration
      const std::size_t end = match_brace(toks, body);
      if (end == kNpos) continue;
      scan.role_fns.push_back(
          {file_index, sig.name, role, toks[sig.paren - 1].line, body + 1, end});
      continue;
    }

    // RG_DETERMINISTIC annotations: only definitions matter (no
    // propagation); the digest paths are annotated at their bodies.
    if (t.text == "RG_DETERMINISTIC") {
      const Signature sig = annotated_signature(toks, i);
      if (sig.paren == kNpos) continue;
      const std::size_t close = match_paren(toks, sig.paren);
      if (close == kNpos) continue;
      const std::size_t body = find_body_brace(toks, close);
      if (body == kNpos) continue;  // declaration
      const std::size_t end = match_brace(toks, body);
      if (end == kNpos) continue;
      scan.det_fns.push_back(
          {file_index, sig.name, toks[sig.paren - 1].line, body + 1, end});
      continue;
    }

    // Metric registration sites.
    if (metric_scope && i + 2 < toks.size() && is(toks[i + 1], "(")) {
      if (t.text == "RG_SPAN" && toks[i + 2].kind == Tok::kString) {
        scan.metric_sites.push_back(
            {"rg.span." + toks[i + 2].text, file_index, toks[i + 2].line});
      } else if (t.text == "RG_COUNT" && toks[i + 2].kind == Tok::kString &&
                 i + 3 < toks.size() &&
                 (is(toks[i + 3], ",") || is(toks[i + 3], ")"))) {
        scan.metric_sites.push_back({toks[i + 2].text, file_index, toks[i + 2].line});
      } else if ((t.text == "counter" || t.text == "histogram" || t.text == "gauge") &&
                 i > 0 && (is(toks[i - 1], ".") || (is(toks[i - 1], ">") /*->*/)) &&
                 toks[i + 2].kind == Tok::kString && i + 3 < toks.size()) {
        if (is(toks[i + 3], ")") || is(toks[i + 3], ",")) {
          scan.metric_sites.push_back({toks[i + 2].text, file_index, toks[i + 2].line});
        } else if (is(toks[i + 3], "+")) {
          // Dynamic registration: "prefix." + <expr> registers the
          // wildcard family "prefix.*".
          scan.metric_sites.push_back(
              {toks[i + 2].text + "*", file_index, toks[i + 2].line});
        }
      }
    }

    // In-tree function definitions (src/ only): `name ( params ) ... {`.
    if (in_src && i + 1 < toks.size() && is(toks[i + 1], "(") &&
        statement_keywords().count(t.text) == 0 &&
        (i == 0 || !is(toks[i - 1], "."))) {
      const std::size_t close = match_paren(toks, i + 1);
      if (close != kNpos && find_body_brace(toks, close) != kNpos) {
        scan.defined.insert(t.text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 2: RG_REALTIME body discipline.
// ---------------------------------------------------------------------------

bool std_qualified(const std::vector<Token>& toks, std::size_t i) {
  if (i < 2 || !is(toks[i - 1], "::")) return false;
  const std::string& ns = toks[i - 2].text;
  return ns == "std" || ns == "chrono" || ns == "this_thread" ||
         ns == "memory_order" || ns == "numbers" || ns == "ranges";
}

void check_realtime_body(const Scan& scan, const RealtimeFn& fn,
                         std::vector<Finding>& out) {
  const SourceFile& f = scan.files[fn.file];
  const std::vector<Token>& toks = f.toks;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;

    if (t.text == "throw") {
      add_finding(out, f, t.line, Check::kThrow,
                  "throw in RG_REALTIME function '" + fn.name + "'");
      continue;
    }
    if (t.text == "new" || t.text == "delete") {
      add_finding(out, f, t.line, Check::kAlloc,
                  "operator " + t.text + " in RG_REALTIME function '" + fn.name + "'");
      continue;
    }
    if (t.text == "co_await") {
      add_finding(out, f, t.line, Check::kBlock,
                  "co_await in RG_REALTIME function '" + fn.name + "'");
      continue;
    }

    const auto banned = banned_idents().find(t.text);
    if (banned != banned_idents().end()) {
      add_finding(out, f, t.line, banned->second,
                  "'" + t.text + "' in RG_REALTIME function '" + fn.name + "'");
      continue;
    }

    // Annotation propagation: calling an in-tree function that is not
    // itself RG_REALTIME.
    if (i + 1 < toks.size() && is(toks[i + 1], "(")) {
      const char first = t.text[0];
      if (std::isupper(static_cast<unsigned char>(first)) != 0 || first == '_') continue;
      if (statement_keywords().count(t.text) != 0) continue;
      if (propagation_allowlist().count(t.text) != 0) continue;
      if (std_qualified(toks, i)) continue;
      if (scan.defined.count(t.text) != 0 && scan.annotated.count(t.text) == 0) {
        add_finding(out, f, t.line, Check::kCall,
                    "RG_REALTIME function '" + fn.name + "' calls unannotated in-tree function '" +
                        t.text + "'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 3: thread-role discipline (RG_THREAD bodies).
// ---------------------------------------------------------------------------

void check_thread_role_body(const Scan& scan, const RoleFn& fn,
                            std::vector<Finding>& out) {
  const SourceFile& f = scan.files[fn.file];
  const std::vector<Token>& toks = f.toks;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    if (i + 1 >= toks.size() || !is(toks[i + 1], "(")) continue;
    const auto it = scan.roles.find(t.text);
    if (it == scan.roles.end()) continue;
    const std::set<std::string>& callee_roles = it->second;
    if (callee_roles.count(fn.role) != 0 || callee_roles.count("any") != 0) continue;
    std::string roles_text;
    for (const std::string& r : callee_roles) {
      if (!roles_text.empty()) roles_text += "|";
      roles_text += r;
    }
    add_finding(out, f, t.line, Check::kThreadRole,
                "RG_THREAD(" + fn.role + ") function '" + fn.name +
                    "' calls '" + t.text + "' which is pinned to RG_THREAD(" +
                    roles_text + "); hand off through an SpscRing, an atomic, "
                    "or a published snapshot instead");
  }
}

// ---------------------------------------------------------------------------
// Pass 4: determinism discipline (RG_DETERMINISTIC bodies).
// ---------------------------------------------------------------------------

/// Tokens banned outright in RG_DETERMINISTIC bodies, with the
/// nondeterminism class they introduce.
const std::unordered_map<std::string, const char*>& nondet_idents() {
  static const std::unordered_map<std::string, const char*> map = {
      // randomness
      {"rand", "randomness"},
      {"srand", "randomness"},
      {"rand_r", "randomness"},
      {"drand48", "randomness"},
      {"random_device", "randomness"},
      {"mt19937", "randomness"},
      {"mt19937_64", "randomness"},
      {"default_random_engine", "randomness"},
      // clock reads
      {"clock_gettime", "clock read"},
      {"gettimeofday", "clock read"},
      {"steady_clock", "clock read"},
      {"system_clock", "clock read"},
      {"high_resolution_clock", "clock read"},
      {"monotonic_ns", "clock read"},
      // unordered-container iteration order
      {"unordered_map", "unordered-container iteration order"},
      {"unordered_set", "unordered-container iteration order"},
      {"unordered_multimap", "unordered-container iteration order"},
      {"unordered_multiset", "unordered-container iteration order"},
      // pointer-keyed ordering
      {"uintptr_t", "pointer-keyed ordering"},
      {"intptr_t", "pointer-keyed ordering"},
      // thread identity
      {"this_thread", "thread identity"},
      {"get_id", "thread identity"},
  };
  return map;
}

/// Tokens banned only as calls (`now(...)`): common enough as plain
/// variable names that the bare identifier stays legal.
const std::unordered_map<std::string, const char*>& nondet_calls() {
  static const std::unordered_map<std::string, const char*> map = {
      {"now", "clock read"},
      {"time", "clock read"},
      {"clock", "clock read"},
  };
  return map;
}

void check_deterministic_body(const Scan& scan, const RealtimeFn& fn,
                              std::vector<Finding>& out) {
  const SourceFile& f = scan.files[fn.file];
  const std::vector<Token>& toks = f.toks;
  for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (t.kind != Tok::kIdent) continue;
    const auto banned = nondet_idents().find(t.text);
    if (banned != nondet_idents().end()) {
      add_finding(out, f, t.line, Check::kNondet,
                  std::string(banned->second) + " ('" + t.text +
                      "') in RG_DETERMINISTIC function '" + fn.name + "'");
      continue;
    }
    if (i + 1 < toks.size() && is(toks[i + 1], "(")) {
      const auto call = nondet_calls().find(t.text);
      if (call != nondet_calls().end()) {
        add_finding(out, f, t.line, Check::kNondet,
                    std::string(call->second) + " ('" + t.text +
                        "()') in RG_DETERMINISTIC function '" + fn.name + "'");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cast gating.
// ---------------------------------------------------------------------------

void check_casts(const SourceFile& f, std::vector<Finding>& out) {
  for (const Token& t : f.toks) {
    if (t.kind != Tok::kIdent) continue;
    if (t.text == "reinterpret_cast" || t.text == "const_cast") {
      add_finding(out, f, t.line, Check::kCast,
                  t.text + " requires an explicit '// rg-lint: allow(cast)' annotation");
    }
  }
}

// ---------------------------------------------------------------------------
// ErrorCode exhaustiveness.
// ---------------------------------------------------------------------------

void check_errorcode(const Scan& scan, const std::string& header_rel,
                     std::vector<Finding>& out) {
  const SourceFile* f = nullptr;
  for (const SourceFile& file : scan.files) {
    if (file.rel == header_rel) {
      f = &file;
      break;
    }
  }
  if (f == nullptr) return;  // header not in this tree (fixture roots)
  const std::vector<Token>& toks = f->toks;

  // Enumerators and their wire values.
  struct Enumerator {
    std::string name;
    long value;
    int line;
  };
  std::vector<Enumerator> enumerators;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is(toks[i], "enum")) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && (is(toks[j], "class") || is(toks[j], "struct"))) ++j;
    if (j >= toks.size() || toks[j].text != "ErrorCode") continue;
    while (j < toks.size() && !is(toks[j], "{")) ++j;
    const std::size_t close = match_brace(toks, j);
    if (close == kNpos) break;
    long next_implicit = 0;
    for (std::size_t k = j + 1; k < close; ++k) {
      if (toks[k].kind != Tok::kIdent) continue;
      Enumerator e{toks[k].text, next_implicit, toks[k].line};
      if (k + 2 < close && is(toks[k + 1], "=") && toks[k + 2].kind == Tok::kNumber) {
        e.value = std::strtol(toks[k + 2].text.c_str(), nullptr, 0);
        k += 2;
      }
      next_implicit = e.value + 1;
      enumerators.push_back(e);
      while (k < close && !is(toks[k], ",")) ++k;
    }
    break;
  }
  if (enumerators.empty()) return;

  // to_string(ErrorCode) switch coverage.
  std::set<std::string> covered;
  bool found_to_string = false;
  int to_string_line = 0;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "to_string" || !is(toks[i + 1], "(") ||
        toks[i + 2].text != "ErrorCode") {
      continue;
    }
    const std::size_t close = match_paren(toks, i + 1);
    if (close == kNpos) continue;
    const std::size_t body = find_body_brace(toks, close);
    if (body == kNpos) continue;
    const std::size_t end = match_brace(toks, body);
    if (end == kNpos) continue;
    found_to_string = true;
    to_string_line = toks[i].line;
    for (std::size_t k = body; k < end; ++k) {
      if (is(toks[k], "case") && k + 3 < end && toks[k + 1].text == "ErrorCode" &&
          is(toks[k + 2], "::")) {
        covered.insert(toks[k + 3].text);
      }
    }
    break;
  }

  if (!found_to_string) {
    add_finding(out, *f, enumerators.front().line, Check::kErrorCode,
                "no to_string(ErrorCode) overload found");
    return;
  }

  std::map<long, std::string> by_value;
  for (const auto& e : enumerators) {
    if (covered.count(e.name) == 0) {
      add_finding(out, *f, e.line, Check::kErrorCode,
                  "ErrorCode::" + e.name + " has no to_string case (to_string at line " +
                      std::to_string(to_string_line) + ")");
    }
    const auto [it, inserted] = by_value.emplace(e.value, e.name);
    if (!inserted) {
      add_finding(out, *f, e.line, Check::kErrorCode,
                  "ErrorCode::" + e.name + " reuses wire value " + std::to_string(e.value) +
                      " (taken by " + it->second + ")");
    }
  }
}

// ---------------------------------------------------------------------------
// Metric-name registry.
// ---------------------------------------------------------------------------

bool registry_relevant(const std::string& name) {
  return name.rfind("rg.", 0) == 0;
}

void check_metrics(const Scan& scan, const Options& options,
                   std::vector<Finding>& out) {
  std::vector<MetricSite> sites;
  for (const MetricSite& s : scan.metric_sites) {
    if (registry_relevant(s.name)) sites.push_back(s);
  }
  if (sites.empty()) return;

  // The registry header is part of the scan set; reusing the scanned
  // copy keeps waiver-usage tracking (the stale-waiver pass) accurate.
  const SourceFile* reg_file = nullptr;
  for (const SourceFile& file : scan.files) {
    if (file.rel == options.registry_path) {
      reg_file = &file;
      break;
    }
  }
  if (reg_file == nullptr) {
    const SourceFile& f = scan.files[sites.front().file];
    add_finding(out, f, sites.front().line, Check::kMetric,
                "metric registry " + options.registry_path +
                    " is missing; run rg_lint --write-metric-registry");
    return;
  }
  const SourceFile& reg = *reg_file;
  std::map<std::string, int> registry;  // name -> line
  for (const Token& t : reg.toks) {
    if (t.kind == Tok::kString && registry_relevant(t.text)) {
      registry.emplace(t.text, t.line);
    }
  }

  std::set<std::string> discovered;
  for (const MetricSite& s : sites) {
    discovered.insert(s.name);
    if (registry.count(s.name) != 0) continue;
    const SourceFile& f = scan.files[s.file];
    add_finding(out, f, s.line, Check::kMetric,
                "metric '" + s.name + "' is not in " + options.registry_path +
                    "; run rg_lint --write-metric-registry");
  }

  std::string docs_text;
  for (const std::string& doc : options.docs) {
    std::ifstream in(fs::path(options.root) / doc);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    docs_text += buf.str();
  }

  for (const auto& [name, line] : registry) {
    if (discovered.count(name) == 0) {
      add_finding(out, reg, line, Check::kMetric,
                  "stale registry entry '" + name +
                      "' (no call site registers it); run rg_lint --write-metric-registry");
      continue;
    }
    std::string needle = name;
    if (!needle.empty() && needle.back() == '*') needle.pop_back();
    if (!docs_text.empty() && docs_text.find(needle) == std::string::npos) {
      add_finding(out, reg, line, Check::kMetric,
                  "metric '" + name + "' is not documented in any of the observability docs");
    }
  }
}

// ---------------------------------------------------------------------------
// Stale-waiver hygiene.  Runs after every finding-producing pass: any
// harvested allow entry naming a known class that never suppressed a
// finding has outlived the code it excused.  Unknown class names are
// ignored (prose in doc comments about the waiver grammar is not a
// waiver).
// ---------------------------------------------------------------------------

void check_stale_waivers(const Scan& scan, std::vector<Finding>& out) {
  std::set<std::string> known;
  for (const Check check : kAllChecks) known.insert(to_string(check));
  // Two rounds: allow(stale_waiver) entries themselves are judged last,
  // after any stale finding they might be suppressing has been emitted
  // (and their use thereby recorded).
  for (const bool meta_round : {false, true}) {
    for (const SourceFile& f : scan.files) {
      for (const auto& [line, classes] : f.allows) {
        for (const std::string& cls : classes) {
          if ((cls == to_string(Check::kStaleWaiver)) != meta_round) continue;
          if (known.count(cls) == 0) continue;
          if (f.used_allows.count({line, cls}) != 0) continue;
          add_finding(out, f, line, Check::kStaleWaiver,
                      "stale waiver: allow(" + cls +
                          ") no longer suppresses any finding; remove it");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// File discovery.
// ---------------------------------------------------------------------------

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

bool excluded(const std::string& rel) {
  return rel.find("lint_fixtures") != std::string::npos ||
         rel.rfind("build", 0) == 0;
}

std::vector<std::string> discover_files(const Options& options) {
  const fs::path root(options.root);
  if (!fs::is_directory(root)) {
    throw std::runtime_error("rg_lint: not a directory: " + options.root);
  }
  std::set<std::string> rels;
  std::vector<fs::path> scan_roots;
  for (const char* sub : {"src", "tests", "tools", "bench", "examples"}) {
    if (fs::is_directory(root / sub)) scan_roots.push_back(root / sub);
  }
  if (scan_roots.empty()) scan_roots.push_back(root);
  for (const fs::path& dir : scan_roots) {
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string rel = fs::relative(entry.path(), root).generic_string();
      if (!excluded(rel)) rels.insert(rel);
    }
  }

  // compile_commands.json supplements the walk (translation units that
  // live outside the conventional directories) — and is checked for
  // staleness: a database that references deleted files, or that lacks
  // a src/ translation unit the walk found, silently narrows the scan,
  // so both abort with a "re-run cmake" error instead.
  if (!options.compile_commands.empty()) {
    std::ifstream in(options.compile_commands);
    if (in) {
      std::stringstream buf;
      buf << in.rdbuf();
      const std::string json = buf.str();
      const std::string key = "\"file\":";
      std::set<std::string> db_rels;
      std::vector<std::string> missing;
      for (std::size_t pos = json.find(key); pos != std::string::npos;
           pos = json.find(key, pos + key.size())) {
        const std::size_t open = json.find('"', pos + key.size());
        if (open == std::string::npos) break;
        const std::size_t close = json.find('"', open + 1);
        if (close == std::string::npos) break;
        const fs::path file = json.substr(open + 1, close - open - 1);
        std::error_code ec;
        const fs::path rel_path = fs::relative(file, root, ec);
        if (ec || rel_path.empty()) continue;
        const std::string rel = rel_path.generic_string();
        if (rel.rfind("..", 0) == 0 || excluded(rel) || !lintable(file)) continue;
        if (fs::is_regular_file(file)) {
          rels.insert(rel);
          db_rels.insert(rel);
        } else {
          missing.push_back(rel);
        }
      }
      std::vector<std::string> uncompiled;
      for (const std::string& rel : rels) {
        if (rel.rfind("src/", 0) == 0 && rel.size() > 4 &&
            rel.compare(rel.size() - 4, 4, ".cpp") == 0 &&
            db_rels.count(rel) == 0) {
          uncompiled.push_back(rel);
        }
      }
      if (!missing.empty() || !uncompiled.empty()) {
        std::string detail;
        for (const std::string& rel : missing) {
          detail += "\n  references deleted file: " + rel;
        }
        for (const std::string& rel : uncompiled) {
          detail += "\n  missing translation unit: " + rel;
        }
        throw std::runtime_error("stale compile database " +
                                 options.compile_commands +
                                 "; re-run cmake -B build -S ." + detail);
      }
    }
  }
  return {rels.begin(), rels.end()};
}

}  // namespace

const char* to_string(Check check) noexcept {
  switch (check) {
    case Check::kAlloc: return "alloc";
    case Check::kLock: return "lock";
    case Check::kIo: return "io";
    case Check::kThrow: return "throw";
    case Check::kBlock: return "block";
    case Check::kPushBack: return "push_back";
    case Check::kCall: return "call";
    case Check::kCast: return "cast";
    case Check::kMetric: return "metric";
    case Check::kErrorCode: return "errorcode";
    case Check::kThreadRole: return "thread_role";
    case Check::kNondet: return "nondet";
    case Check::kStaleWaiver: return "stale_waiver";
  }
  return "unknown";
}

Report run(const Options& options) {
  Scan scan;
  for (const std::string& rel : discover_files(options)) {
    std::ifstream in(fs::path(options.root) / rel);
    if (!in) continue;
    std::stringstream buf;
    buf << in.rdbuf();
    scan.files.push_back(lex(rel, buf.str()));
  }
  for (std::size_t i = 0; i < scan.files.size(); ++i) scan_file(i, scan);

  Report report;
  report.files_scanned = scan.files.size();
  report.realtime_functions = scan.realtime_fns.size();
  report.thread_role_functions = scan.role_fns.size();
  report.deterministic_functions = scan.det_fns.size();

  for (const RealtimeFn& fn : scan.realtime_fns) {
    check_realtime_body(scan, fn, report.findings);
  }
  for (const RoleFn& err : scan.thread_role_errors) {
    const SourceFile& f = scan.files[err.file];
    if (err.name.empty()) {
      add_finding(report.findings, f, err.line, Check::kThreadRole,
                  "malformed RG_THREAD annotation: expected RG_THREAD(role)");
    } else {
      add_finding(report.findings, f, err.line, Check::kThreadRole,
                  "unknown thread role '" + err.role + "' on '" + err.name +
                      "' (roles: pump, shard, flusher, admin, any)");
    }
  }
  for (const RoleFn& fn : scan.role_fns) {
    check_thread_role_body(scan, fn, report.findings);
  }
  for (const RealtimeFn& fn : scan.det_fns) {
    check_deterministic_body(scan, fn, report.findings);
  }
  for (const SourceFile& f : scan.files) check_casts(f, report.findings);
  check_errorcode(scan, options.errorcode_header, report.findings);
  check_metrics(scan, options, report.findings);
  check_stale_waivers(scan, report.findings);

  std::set<std::string> names;
  for (const MetricSite& s : scan.metric_sites) {
    if (registry_relevant(s.name)) names.insert(s.name);
  }
  report.metric_names.assign(names.begin(), names.end());

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.message) <
                     std::tie(b.file, b.line, b.message);
            });
  return report;
}

std::string render_metric_registry(std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::string out;
  out +=
      "// GENERATED by `rg_lint --write-metric-registry` -- do not edit by hand.\n"
      "//\n"
      "// The canonical list of metric families the tree registers (exact\n"
      "// names, plus `prefix.*` wildcards for dynamically-composed names).\n"
      "// tools/rg_lint checks every \"rg.*\" literal registered in src/ and\n"
      "// tools/ against this list and against docs/observability.md /\n"
      "// docs/gateway.md, and flags stale entries, so the header, the code,\n"
      "// and the docs cannot drift apart silently.\n"
      "#pragma once\n"
      "\n"
      "namespace rg::obs {\n"
      "\n"
      "inline constexpr const char* kMetricNames[] = {\n";
  for (const std::string& name : names) {
    out += "    \"" + name + "\",\n";
  }
  out +=
      "};\n"
      "\n"
      "}  // namespace rg::obs\n";
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string render_json(const Report& report) {
  std::map<std::string, int> counts;
  for (const Check check : kAllChecks) counts[to_string(check)] = 0;
  for (const Finding& f : report.findings) ++counts[to_string(f.check)];

  std::string out;
  out += "{\n";
  out += "  \"schema\": \"rg.lint.report/1\",\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) + ",\n";
  out += "  \"realtime_functions\": " + std::to_string(report.realtime_functions) + ",\n";
  out += "  \"thread_role_functions\": " + std::to_string(report.thread_role_functions) + ",\n";
  out += "  \"deterministic_functions\": " +
         std::to_string(report.deterministic_functions) + ",\n";
  out += "  \"counts\": {";
  bool first = true;
  for (const Check check : kAllChecks) {
    if (!first) out += ",";
    first = false;
    const std::string name = to_string(check);
    out += "\n    \"" + name + "\": " + std::to_string(counts[name]);
  }
  out += "\n  },\n";
  out += "  \"total\": " + std::to_string(report.findings.size()) + ",\n";
  out += "  \"findings\": [";
  first = true;
  for (const Finding& f : report.findings) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"class\": \"" +
           to_string(f.check) + "\", \"message\": \"" + json_escape(f.message) + "\"}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace rg::lint
