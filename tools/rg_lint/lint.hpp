// rg_lint: the repo's real-time-discipline static analyzer.
//
// A deliberately small, dependency-free checker (no libclang): it lexes
// the tree with a token-level C++ scanner and enforces seven contracts
// that the compiler cannot express:
//
//   1. Real-time discipline — every function annotated RG_REALTIME (see
//      src/common/realtime.hpp) must be free of allocation, locking,
//      stream/printf I/O, throws, blocking calls, and unreserved
//      push_back; and every in-tree function it calls must itself be
//      annotated (name-based propagation).
//   2. Metric-name registry — every "rg.*" metric literal registered in
//      src/ or tools/ must appear in the generated registry header
//      (src/obs/metric_names.hpp) and in the observability docs; stale
//      registry entries are findings too.
//   3. ErrorCode exhaustiveness — every enumerator of rg::ErrorCode has
//      a distinct wire value and a to_string case.
//   4. Cast gating — reinterpret_cast / const_cast anywhere in the tree
//      requires an explicit cast waiver annotation.
//   5. Thread-role discipline — a function annotated RG_THREAD(role) may
//      only call in-tree role-annotated functions of the same role or
//      `any`; cross-role handoff goes through the approved boundary
//      types (SpscRing, atomics, GatewaySnapshot publication).
//   6. Determinism discipline — RG_DETERMINISTIC bodies (verdict and
//      calibration digest paths) may not read clocks, draw randomness,
//      iterate unordered containers, order by pointer value, or consult
//      thread ids.
//   7. Waiver hygiene — every `rg-lint` allow annotation must still
//      suppress at least one finding; waivers that outlived the code
//      they excused are flagged stale.
//
// (The clang -Wthread-safety capability contract — Contract 7 in
// docs/static-analysis.md — is enforced by the compiler via
// scripts/check_thread_safety.sh, not by this scanner.)
//
// Deliberate exceptions use an `rg-lint` allow comment naming the
// finding class(es), placed on the offending line or the line directly
// above.  The full contracts, the analyzer's known blind spots (macros,
// operators, constructors), and the registry workflow live in
// docs/static-analysis.md.
//
// Built as a library so tests/test_lint.cpp can drive it in-process
// against both the real tree and the seeded fixtures.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rg::lint {

/// Finding classes.  The string form (to_string) doubles as the
/// allow-annotation class name.
enum class Check {
  kAlloc,       ///< new/malloc/make_unique/... in an RG_REALTIME body
  kLock,        ///< mutex/lock_guard/lock()/... in an RG_REALTIME body
  kIo,          ///< printf/iostream/file I/O in an RG_REALTIME body
  kThrow,       ///< throw in an RG_REALTIME body
  kBlock,       ///< sleep/wait/recv/... in an RG_REALTIME body
  kPushBack,    ///< push_back/emplace_back in an RG_REALTIME body
  kCall,        ///< RG_REALTIME body calls an unannotated in-tree function
  kCast,        ///< reinterpret_cast/const_cast without a cast waiver
  kMetric,      ///< metric literal unregistered / stale / undocumented
  kErrorCode,   ///< ErrorCode enumerator without to_string case / dup value
  kThreadRole,  ///< RG_THREAD(role) body calls a function pinned elsewhere
  kNondet,      ///< clock/rand/unordered/... in an RG_DETERMINISTIC body
  kStaleWaiver, ///< allow annotation that no longer suppresses anything
};

/// Every check class, in report order (JSON counts iterate this).
inline constexpr Check kAllChecks[] = {
    Check::kAlloc,     Check::kLock,   Check::kIo,        Check::kThrow,
    Check::kBlock,     Check::kPushBack, Check::kCall,    Check::kCast,
    Check::kMetric,    Check::kErrorCode, Check::kThreadRole, Check::kNondet,
    Check::kStaleWaiver,
};

/// Allow-annotation / report name for a check class ("alloc", "cast", ...).
[[nodiscard]] const char* to_string(Check check) noexcept;

struct Finding {
  std::string file;  ///< path relative to the scanned root
  int line = 0;
  Check check = Check::kAlloc;
  std::string message;
};

struct Options {
  /// Tree root.  Scans src/, tests/, tools/, bench/, examples/ beneath
  /// it (those that exist; falls back to the root itself otherwise).
  std::string root = ".";
  /// Optional compile_commands.json; "file" entries under the root are
  /// merged into the scan set (headers still come from the walk).  When
  /// set, the database is also checked for staleness: entries whose
  /// files no longer exist, or src/ translation units missing from the
  /// database, abort the run with a "re-run cmake" error.
  std::string compile_commands;
  /// Registry header path, relative to root.
  std::string registry_path = "src/obs/metric_names.hpp";
  /// Docs that must mention every registered metric, relative to root
  /// (missing files are skipped).
  std::vector<std::string> docs = {"docs/observability.md", "docs/gateway.md", "docs/admin.md",
                                   "docs/persistence.md"};
  /// ErrorCode header, relative to root (check skipped when absent).
  std::string errorcode_header = "src/common/error.hpp";
};

struct Report {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t realtime_functions = 0;  ///< RG_REALTIME definitions analyzed
  std::size_t thread_role_functions = 0;  ///< RG_THREAD definitions analyzed
  std::size_t deterministic_functions = 0;  ///< RG_DETERMINISTIC definitions analyzed
  std::vector<std::string> metric_names;  ///< discovered, deduped, sorted
};

/// Run every check over the tree.  Throws std::runtime_error only for
/// environmental failures (unreadable root, stale compile_commands);
/// findings never throw.
[[nodiscard]] Report run(const Options& options);

/// Render the metric registry header for the given (discovered) names.
/// Deterministic: names are deduped and sorted.
[[nodiscard]] std::string render_metric_registry(std::vector<std::string> names);

/// Render a report as "rg.lint.report/1" JSON: schema tag, scan
/// counters, per-class finding counts (zero-filled), total, and the
/// findings array.  Deterministic for a given report.
[[nodiscard]] std::string render_json(const Report& report);

}  // namespace rg::lint
