// rg_lint CLI.  Exit codes: 0 clean, 1 findings, 2 usage/environment.
//
//   rg_lint [--root DIR] [--compile-commands FILE] [--json FILE]
//           [--write-metric-registry] [--list-metrics] [--quiet]
//
// scripts/tier1.sh stage 7 runs `rg_lint --root . --json` and gates on
// the machine-readable "rg.lint.report/1" document instead of grepping
// stdout; `--write-metric-registry` regenerates src/obs/metric_names.hpp
// after adding or removing a metric (the diff is committed).

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "lint.hpp"

namespace {

int usage(std::ostream& os, int code) {
  os << "usage: rg_lint [--root DIR] [--compile-commands FILE] [--json FILE]\n"
        "               [--write-metric-registry] [--list-metrics] [--quiet]\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  rg::lint::Options options;
  std::string json_path;
  bool write_registry = false;
  bool list_metrics = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "rg_lint: " << arg << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.root = v;
    } else if (arg == "--compile-commands") {
      const char* v = next();
      if (v == nullptr) return 2;
      options.compile_commands = v;
    } else if (arg == "--json") {
      const char* v = next();
      if (v == nullptr) return 2;
      json_path = v;
    } else if (arg == "--write-metric-registry") {
      write_registry = true;
    } else if (arg == "--list-metrics") {
      list_metrics = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else {
      std::cerr << "rg_lint: unknown argument: " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }
  if (options.compile_commands.empty()) {
    // Default: the conventional build directory, when it exists.
    const std::string candidate = options.root + "/build/compile_commands.json";
    if (std::ifstream(candidate).good()) options.compile_commands = candidate;
  }

  rg::lint::Report report;
  try {
    report = rg::lint::run(options);
  } catch (const std::exception& e) {
    std::cerr << "rg_lint: " << e.what() << "\n";
    return 2;
  }

  if (write_registry) {
    const std::string path = options.root + "/" + options.registry_path;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "rg_lint: cannot write " << path << "\n";
      return 2;
    }
    out << rg::lint::render_metric_registry(report.metric_names);
    if (!quiet) {
      std::cout << "rg_lint: wrote " << report.metric_names.size()
                << " metric names to " << path << "\n";
    }
    return 0;
  }
  if (list_metrics) {
    for (const std::string& name : report.metric_names) std::cout << name << "\n";
    return 0;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "rg_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << rg::lint::render_json(report);
  }

  for (const rg::lint::Finding& f : report.findings) {
    std::cout << f.file << ":" << f.line << ": [" << rg::lint::to_string(f.check)
              << "] " << f.message << "\n";
  }
  if (!quiet) {
    std::cerr << "rg_lint: " << report.files_scanned << " files, "
              << report.realtime_functions << " RG_REALTIME functions, "
              << report.metric_names.size() << " metric families, "
              << report.findings.size() << " finding(s)\n";
  }
  return report.findings.empty() ? 0 : 1;
}
